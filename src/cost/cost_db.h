/**
 * @file
 * Layer-cost database: the offline MAESTRO pass of Figure 4.
 *
 * For every (model, layer, dataflow class) of a scenario the database
 * caches the MaestroLite LayerCost, and provides the expectation
 * formulas used by the top-level engines:
 *
 *   E(Lat(l)) = sum_i (n_dfi / |C|) * Lat(l -> dfi)        (Eq. 1)
 *
 * where Lat(l -> df) = intra-chiplet cycles + the amortized DRAM
 * streaming time of the layer's weights (heavy LLM layers are
 * DRAM-resident, so packing decisions must see that cost).
 *
 * Cross-solve reuse: the per-model tables are pure functions of the
 * model's content and the chiplet specs, independent of which scenario
 * mix the model appears in. A process-wide cache keyed by that content
 * (see ModelCostTables below) lets a serving fleet that solves many
 * mixes over the same catalog build each model's tables exactly once
 * instead of once per schedule-cache miss.
 */

#ifndef SCAR_COST_COST_DB_H
#define SCAR_COST_COST_DB_H

#include <cstdint>
#include <memory>
#include <vector>

#include "arch/mcm.h"
#include "cost/maestro_lite.h"
#include "obs/solve_profile.h"
#include "workload/scenario.h"

namespace scar
{

/** Cost-database construction options. */
struct CostDbOptions
{
    /**
     * Chiplet-level mini-batch b' (paper Section III-E): 0 derives it
     * per model from the L2 capacity (largest b' <= batch whose
     * activation working set fits half the L2, leaving room for
     * weight tiles); a positive value fixes b' for every model.
     */
    int fixedMiniBatch = 0;

    /**
     * Consult the process-wide model-table cache before building a
     * model's tables (and publish fresh builds to it). The cached
     * tables are shared immutably, so reuse is bit-transparent: every
     * query answers exactly as a fresh build would. Off forces a
     * private build — used by tests pinning that transparency and by
     * benchmarks measuring cold construction.
     */
    bool reuseTables = true;
};

/**
 * Per-model cost tables: everything CostDb derives for one model that
 * depends only on (layer dims/types, batch, per-dataflow chiplet
 * specs, L2 budget, mini-batch policy, energy constants) — NOT on the
 * scenario mix the model appears in. Immutable once built, shared via
 * shared_ptr across every CostDb whose content key matches.
 */
struct ModelCostTables
{
    /** Candidate chiplet-level mini-batches; index 0 is the
     *  capacity-derived b', index 1 (when distinct) streaming b'=1. */
    std::vector<int> miniBatches;

    // costs[candidate][layer][dataflowIndex]
    std::vector<std::vector<std::array<LayerCost, kNumDataflows>>> costs;

    /**
     * All-pairs running sums for one (candidate, dataflow): entry
     * (first, last) holds the sequential sum over layers
     * [first, last], laid out as a packed upper triangle.
     */
    struct RangeSums
    {
        std::vector<double> cycles;   ///< sum intraCycles() * bPrime
        std::vector<double> energyNj; ///< sum intraEnergyNj * bPrime
    };

    // rangeSums[candidate][dataflowIndex]
    std::vector<std::array<RangeSums, kNumDataflows>> rangeSums;

    std::vector<double> weightPrefix; ///< L+1 prefix of weightBytes()
    // Sparse table: level k holds the max activation footprint over
    // [i, i + 2^k - 1].
    std::vector<std::vector<double>> actMax;
};

/** Precomputed per-(layer, dataflow) costs for one scenario + MCM. */
class CostDb
{
  public:
    /**
     * Builds the database by evaluating every layer of the scenario on
     * each dataflow class present on (or representable for) the MCM,
     * at each model's chiplet-level mini-batch b'.
     */
    CostDb(const Scenario& scenario, const Mcm& mcm,
           MaestroLite model = MaestroLite{},
           CostDbOptions options = CostDbOptions{});

    /**
     * Candidate chiplet-level mini-batches b' for a model. The paper
     * leaves b' <= b free; the two useful extremes are streaming
     * (b' = 1, maximizing inter-chiplet pipelining overlap) and
     * capacity folding (largest b' whose activations fit L2,
     * maximizing intra-chiplet batch parallelism). The window
     * evaluator picks the better per model and placement.
     */
    const std::vector<int>& miniBatchCandidates(int model) const;

    /** The capacity-derived (largest) mini-batch for a model. */
    int miniBatch(int model) const;

    /** Cached cost of a layer at a specific mini-batch candidate. */
    const LayerCost& costAt(int model, int layer, Dataflow df,
                            int bPrime) const;

    /** Index of a cached mini-batch candidate (panics when absent). */
    int miniBatchIndex(int model, int bPrime) const;

    // ---- O(1) segment range queries ------------------------------
    //
    // The window evaluator scores thousands of candidate segments per
    // search, and every segment cost is a reduction over a contiguous
    // layer range. These queries return those reductions in O(1) from
    // tables precomputed at construction. Byte-identity contract
    // (docs/ARCHITECTURE.md): each value is bit-identical to the
    // sequential per-layer loop it replaces — the sum tables store
    // every left-anchored running sum in the original accumulation
    // order (never a prefix-sum difference, which rounds differently),
    // and max/weight-byte queries are exact because IEEE max never
    // rounds and layer byte counts are integers below 2^53.

    /**
     * Sum over layers [first, last] of intraCycles() * bPrime for the
     * mini-batch candidate at index `bIdx` (see miniBatchIndex).
     */
    double segmentCycles(int model, int bIdx, Dataflow df, int first,
                         int last) const;

    /** Sum over [first, last] of intraEnergyNj * bPrime, same terms. */
    double segmentEnergyNj(int model, int bIdx, Dataflow df, int first,
                           int last) const;

    /** Sum over [first, last] of the layers' weightBytes(). */
    double segmentWeightBytes(int model, int first, int last) const;

    /**
     * Max over [first, last] of the per-sample activation footprint
     * inputBytes() + outputBytes() (sparse-table range max).
     */
    double segmentMaxActBytes(int model, int first, int last) const;

    /** Cached cost of a layer on the given dataflow class. */
    const LayerCost& cost(int model, int layer, Dataflow df) const;

    /** Per-sample layer cycles incl. weight streaming, one dataflow. */
    double layerCycles(int model, int layer, Dataflow df) const;

    /** Per-sample layer energy (nJ) incl. weight DRAM, one dataflow. */
    double layerEnergyNj(int model, int layer, Dataflow df) const;

    /** Expected per-sample layer cycles over dataflow classes (Eq. 1). */
    double expectedLayerCycles(int model, int layer) const;

    /** Expected per-sample layer energy (nJ) over dataflow classes. */
    double expectedLayerEnergyNj(int model, int layer) const;

    /** The scenario this database was built for. */
    const Scenario& scenario() const { return scenario_; }

    /** The MCM this database was built for. */
    const Mcm& mcm() const { return mcm_; }

    // ---- cross-solve table reuse ---------------------------------

    /** Hits/misses against the process-wide model-table cache. */
    struct TableStats
    {
        std::int64_t hits = 0;   ///< models whose tables were reused
        std::int64_t misses = 0; ///< models built (and published)
    };

    /**
     * This database's construction outcome: of its models, how many
     * table sets came from the process-wide cache vs were built here.
     * Stable after construction; Scar::run copies it into a profiled
     * solve's SolveProfile.
     */
    const TableStats& tableStats() const { return tableStats_; }

    /** Process-wide cache totals (all CostDb constructions so far). */
    static TableStats tableCacheTotals();

    /**
     * Drops every cached table set (test isolation; in-flight shared
     * pointers stay valid — the cache holds references, not storage).
     */
    static void clearTableCache();

    // ---- profiling hooks -----------------------------------------

    /**
     * Attaches (or detaches, with nullptr) live query counters: range
     * queries bump costDbRangeQueries, per-layer costings bump
     * costDbLayerQueries. The disabled state costs one predicted
     * branch per query. Attach/detach only while no solve is querying
     * the database (Scar::run does this for profiled solves).
     */
    void setCounters(obs::SearchCounters* counters)
    {
        counters_ = counters;
    }

    /** The attached query counters, or nullptr when unprofiled. */
    obs::SearchCounters* counters() const { return counters_; }

  private:
    const Scenario& scenario_;
    const Mcm& mcm_;
    obs::SearchCounters* counters_ = nullptr; ///< profiled solves only
    std::array<double, kNumDataflows> classWeight_{};
    double offchipBpc_;
    double dramLatencyCycles_;
    TableStats tableStats_; ///< this construction's reuse outcome

    std::size_t triIndex(int model, int first, int last) const;

    // One immutable table set per model, possibly shared with other
    // CostDb instances through the process-wide cache.
    std::vector<std::shared_ptr<const ModelCostTables>> tables_;
};

} // namespace scar

#endif // SCAR_COST_COST_DB_H
