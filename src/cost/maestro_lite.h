/**
 * @file
 * MaestroLite: MAESTRO-style analytical intra-chiplet cost model.
 *
 * The paper uses MAESTRO [35,36] offline to produce a per-(layer,
 * dataflow-class) latency/energy database consumed by the scheduler
 * (Figure 4). MaestroLite is the native C++ substitute: for each layer
 * and dataflow it derives
 *
 *  - compute cycles from the dataflow's spatial mapping (with tile-size
 *    quantization, searching the weight-stationary K-tile),
 *  - L2 traffic from per-tensor reuse under that mapping,
 *  - a streaming bound from the on-chiplet NoC bandwidth,
 *  - intra-chiplet energy from MAC + L2 access counts.
 *
 * Mappings (see DESIGN.md section 3):
 *  - NVDLA-like weight-stationary: spatial over K x C. Weights enter
 *    the array once; inputs re-stream once per K-tile pass; partial
 *    sums spill to L2 once per extra C-pass.
 *  - Shi-diannao-like output-stationary: spatial over the flattened
 *    output grid OY*OX. Outputs are resident; weights and the input
 *    tile re-stream once per output-tile pass (the temporal K/C loops
 *    reuse the tile from PE-local storage, ShiDianNao's
 *    neighbour-sharing register array).
 *  - Pool/Elementwise: dataflow-agnostic spatial map over outputs.
 */

#ifndef SCAR_COST_MAESTRO_LITE_H
#define SCAR_COST_MAESTRO_LITE_H

#include "arch/chiplet.h"
#include "cost/energy_table.h"
#include "workload/layer.h"

namespace scar
{

/** Per-sample cost of one layer on one chiplet class. */
struct LayerCost
{
    double macs = 0.0;          ///< multiply-accumulates
    double computeCycles = 0.0; ///< MAC-array-limited cycles
    double streamCycles = 0.0;  ///< L2->PE bandwidth-limited cycles
    double utilization = 0.0;   ///< macs / (computeCycles * numPes)
    double l2AccessBytes = 0.0; ///< total L2 read+write traffic
    double intraEnergyNj = 0.0; ///< MAC + L2 energy
    double weightBytes = 0.0;   ///< weight footprint (shared by batch)
    double inputBytes = 0.0;    ///< input activation bytes (one sample)
    double outputBytes = 0.0;   ///< output activation bytes (one sample)

    /** Steady-state on-chiplet cycles: max of compute and streaming. */
    double
    intraCycles() const
    {
        return computeCycles > streamCycles ? computeCycles : streamCycles;
    }
};

/** Analytical intra-chiplet model; stateless apart from constants. */
class MaestroLite
{
  public:
    explicit MaestroLite(EnergyParams energy = EnergyParams{})
        : energy_(energy)
    {}

    /**
     * Evaluates one layer on a chiplet of the given spec.
     *
     * @param miniBatch number of samples the chiplet processes
     *        concurrently (the paper's b'). Batch samples extend the
     *        output-stationary spatial dimension (more output pixels
     *        to parallelize) and amortize weight-stationary weight
     *        fetches; the returned cost is still PER SAMPLE.
     */
    LayerCost evalLayer(const Layer& layer, const ChipletSpec& spec,
                        int miniBatch = 1) const;

    /** The energy constants in use. */
    const EnergyParams& energyParams() const { return energy_; }

  private:
    LayerCost evalWeightStationary(const Layer& layer,
                                   const ChipletSpec& spec,
                                   int miniBatch) const;
    LayerCost evalRowStationary(const Layer& layer,
                                const ChipletSpec& spec,
                                int miniBatch) const;
    LayerCost evalOutputStationary(const Layer& layer,
                                   const ChipletSpec& spec,
                                   int miniBatch) const;
    LayerCost evalSpatialOnly(const Layer& layer,
                              const ChipletSpec& spec,
                              int miniBatch) const;
    void finishCost(const Layer& layer, const ChipletSpec& spec,
                    LayerCost& cost) const;

    EnergyParams energy_;
};

} // namespace scar

#endif // SCAR_COST_MAESTRO_LITE_H
