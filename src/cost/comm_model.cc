#include "cost/comm_model.h"

#include "common/units.h"

namespace scar
{

CommModel::CommModel(const Mcm& mcm)
    : mcm_(mcm),
      hopCycles_(nsToCycles(mcm.params().nopHopLatencyNs)),
      dramCycles_(nsToCycles(mcm.params().dramLatencyNs)),
      nopBpc_(gbpsToBytesPerCycle(mcm.params().bwNopGBps)),
      offchipBpc_(gbpsToBytesPerCycle(mcm.params().bwOffchipGBps))
{
}

double
CommModel::nopLatencyCycles(double bytes, int src, int dst) const
{
    if (src == dst || bytes <= 0.0)
        return 0.0;
    const int hops = mcm_.topology().hops(src, dst);
    return bytes / nopBpc_ + hops * hopCycles_;
}

double
CommModel::nopEnergyNj(double bytes, int src, int dst) const
{
    if (src == dst || bytes <= 0.0)
        return 0.0;
    const int hops = mcm_.topology().hops(src, dst);
    return pjToNj(bytes * 8.0 * mcm_.params().nopEnergyPjPerBit * hops);
}

double
CommModel::dramLatencyCycles(double bytes, int chiplet) const
{
    if (bytes <= 0.0)
        return 0.0;
    const int hops = mcm_.hopsToMem(chiplet);
    return bytes / offchipBpc_ + hops * hopCycles_ + dramCycles_;
}

double
CommModel::dramEnergyNj(double bytes, int chiplet) const
{
    if (bytes <= 0.0)
        return 0.0;
    const double dramNj =
        pjToNj(bytes * 8.0 * mcm_.params().dramEnergyPjPerBit);
    return dramNj +
           nopEnergyNj(bytes, mcm_.nearestMemInterface(chiplet), chiplet);
}

} // namespace scar
