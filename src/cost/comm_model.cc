#include "cost/comm_model.h"

#include <algorithm>

#include "common/error.h"
#include "common/units.h"

namespace scar
{

namespace
{

/** Utilization cap keeping the M/D/1 curve finite (factor <= 10.5). */
constexpr double kMaxUtilization = 0.95;

} // namespace

const char*
commPhaseName(CommPhase phase)
{
    switch (phase) {
      case CommPhase::WeightLoad: return "weight";
      case CommPhase::Activation: return "act";
      case CommPhase::Spill:      return "spill";
    }
    return "unknown";
}

PhasedLinkTable::PhasedLinkTable(const Topology& topo)
    : topo_(&topo),
      linkLoads_(static_cast<std::size_t>(kNumCommPhases) *
                     topo.numLinks(),
                 0.0),
      mediumLoads_(static_cast<std::size_t>(kNumCommPhases) *
                       topo.numMedia(),
                   0.0)
{
}

void
PhasedLinkTable::addFlow(CommPhase phase,
                         const std::vector<int>& linkIds, double bytes)
{
    if (bytes <= 0.0)
        return;
    const int p = static_cast<int>(phase);
    for (const int id : linkIds) {
        linkLoads_[static_cast<std::size_t>(p) * topo_->numLinks() +
                   id] += bytes;
        const int medium = topo_->linkMedium(id);
        if (medium >= 0)
            mediumLoads_[static_cast<std::size_t>(p) *
                             topo_->numMedia() +
                         medium] += bytes;
    }
}

double
PhasedLinkTable::load(CommPhase phase, int linkId) const
{
    const int p = static_cast<int>(phase);
    const int medium = topo_->linkMedium(linkId);
    if (medium >= 0)
        return mediumLoads_[static_cast<std::size_t>(p) *
                                topo_->numMedia() +
                            medium];
    return linkLoads_[static_cast<std::size_t>(p) *
                          topo_->numLinks() +
                      linkId];
}

void
PhasedLinkTable::clear()
{
    std::fill(linkLoads_.begin(), linkLoads_.end(), 0.0);
    std::fill(mediumLoads_.begin(), mediumLoads_.end(), 0.0);
}

CommModel::CommModel(const Mcm& mcm)
    : mcm_(mcm),
      hopCycles_(nsToCycles(mcm.params().nopHopLatencyNs)),
      dramCycles_(nsToCycles(mcm.params().dramLatencyNs)),
      nopBpc_(gbpsToBytesPerCycle(mcm.params().bwNopGBps)),
      offchipBpc_(gbpsToBytesPerCycle(mcm.params().bwOffchipGBps))
{
    const Topology& topo = mcm.topology();
    if (!topo.hasBroadcastPlane())
        return;
    broadcastBpc_ = gbpsToBytesPerCycle(mcm.params().bwBroadcastGBps);

    // Per-pair bottleneck bandwidth and summed per-bit energy over the
    // routed links: a route mixing wired and plane hops drains at the
    // slowest link and pays each link's own energy. numNodes^2 doubles,
    // built once per (scenario, MCM) with the CostDb.
    const int n = topo.numNodes();
    pairBpc_.assign(static_cast<std::size_t>(n) * n, nopBpc_);
    pairEnergyPjPerBit_.assign(static_cast<std::size_t>(n) * n, 0.0);
    for (int src = 0; src < n; ++src) {
        for (int dst = 0; dst < n; ++dst) {
            if (src == dst)
                continue;
            double bpc = nopBpc_;
            double pjPerBit = 0.0;
            for (const int id : topo.routeLinkIds(src, dst)) {
                const bool plane = topo.linkMedium(id) >= 0;
                bpc = std::min(bpc, plane ? broadcastBpc_ : nopBpc_);
                pjPerBit += plane
                                ? mcm.params().broadcastEnergyPjPerBit
                                : mcm.params().nopEnergyPjPerBit;
            }
            pairBpc_[static_cast<std::size_t>(src) * n + dst] = bpc;
            pairEnergyPjPerBit_[static_cast<std::size_t>(src) * n +
                                dst] = pjPerBit;
        }
    }
}

double
CommModel::nopLatencyCycles(double bytes, int src, int dst) const
{
    if (src == dst || bytes <= 0.0)
        return 0.0;
    const int hops = mcm_.topology().hops(src, dst);
    if (!pairBpc_.empty()) {
        const double bpc =
            pairBpc_[static_cast<std::size_t>(src) *
                         mcm_.topology().numNodes() +
                     dst];
        return bytes / bpc + hops * hopCycles_;
    }
    return bytes / nopBpc_ + hops * hopCycles_;
}

double
CommModel::nopEnergyNj(double bytes, int src, int dst) const
{
    if (src == dst || bytes <= 0.0)
        return 0.0;
    if (!pairEnergyPjPerBit_.empty()) {
        const double pjPerBit =
            pairEnergyPjPerBit_[static_cast<std::size_t>(src) *
                                    mcm_.topology().numNodes() +
                                dst];
        return pjToNj(bytes * 8.0 * pjPerBit);
    }
    const int hops = mcm_.topology().hops(src, dst);
    return pjToNj(bytes * 8.0 * mcm_.params().nopEnergyPjPerBit * hops);
}

double
CommModel::dramLatencyCycles(double bytes, int chiplet) const
{
    if (bytes <= 0.0)
        return 0.0;
    const int hops = mcm_.hopsToMem(chiplet);
    return bytes / offchipBpc_ + hops * hopCycles_ + dramCycles_;
}

double
CommModel::dramEnergyNj(double bytes, int chiplet) const
{
    if (bytes <= 0.0)
        return 0.0;
    const double dramNj =
        pjToNj(bytes * 8.0 * mcm_.params().dramEnergyPjPerBit);
    return dramNj +
           nopEnergyNj(bytes, mcm_.nearestMemInterface(chiplet), chiplet);
}

bool
CommModel::planeCovers(int src, const std::vector<int>& dsts) const
{
    const Topology& topo = mcm_.topology();
    if (!topo.hasBroadcastPlane())
        return false;
    const std::vector<int>& members = topo.broadcastMembers();
    auto isMember = [&members](int node) {
        return std::binary_search(members.begin(), members.end(), node);
    };
    if (!isMember(src))
        return false;
    for (const int d : dsts) {
        if (d != src && !isMember(d))
            return false;
    }
    return true;
}

double
CommModel::broadcastLatencyCycles(double bytes, int src,
                                  const std::vector<int>& dsts) const
{
    if (bytes <= 0.0 || dsts.empty())
        return 0.0;
    if (planeCovers(src, dsts))
        // One shared-medium slot: a single transmission reaches every
        // plane member in one hop, however many destinations listed.
        return bytes / broadcastBpc_ + hopCycles_;
    double total = 0.0;
    for (const int d : dsts)
        total += nopLatencyCycles(bytes, src, d);
    return total;
}

double
CommModel::broadcastEnergyNj(double bytes, int src,
                             const std::vector<int>& dsts) const
{
    if (bytes <= 0.0 || dsts.empty())
        return 0.0;
    if (planeCovers(src, dsts))
        return pjToNj(bytes * 8.0 *
                      mcm_.params().broadcastEnergyPjPerBit);
    double total = 0.0;
    for (const int d : dsts)
        total += nopEnergyNj(bytes, src, d);
    return total;
}

double
CommModel::linkBytesPerCycle(int linkId) const
{
    return mcm_.topology().linkMedium(linkId) >= 0 ? broadcastBpc_
                                                   : nopBpc_;
}

double
CommModel::queueingFactor(double loadBytes, double windowCycles,
                          int linkId) const
{
    if (loadBytes <= 0.0 || windowCycles <= 0.0)
        return 1.0;
    const double capacity = linkBytesPerCycle(linkId) * windowCycles;
    const double rho =
        std::min(loadBytes / capacity, kMaxUtilization);
    return 1.0 + rho / (2.0 * (1.0 - rho));
}

} // namespace scar
