#include "cost/cost_db.h"
#include <algorithm>
#include <cstring>
#include <future>
#include <mutex>
#include <unordered_map>

#include "common/error.h"
#include "common/units.h"

namespace scar
{

namespace
{

/**
 * Builds one model's table set. Pure: the result depends only on the
 * arguments, never on the scenario mix — the precondition for sharing
 * the tables across CostDb instances.
 */
std::shared_ptr<const ModelCostTables>
buildModelTables(const Model& mod,
                 const std::array<ChipletSpec, kNumDataflows>& specs,
                 double l2Budget, int fixedMiniBatch,
                 const MaestroLite& model)
{
    auto tables = std::make_shared<ModelCostTables>();

    int capacityMiniBatch = 1;
    if (fixedMiniBatch > 0) {
        capacityMiniBatch = std::min(fixedMiniBatch, mod.batch);
    } else {
        double maxAct = 1.0;
        for (const Layer& layer : mod.layers) {
            maxAct = std::max(maxAct, layer.inputBytes() +
                                          layer.outputBytes());
        }
        const int capacityBatch =
            std::max(1, static_cast<int>(l2Budget / maxAct));
        capacityMiniBatch = std::min(mod.batch, capacityBatch);
    }
    tables->miniBatches.push_back(capacityMiniBatch);
    if (capacityMiniBatch > 1 && fixedMiniBatch == 0)
        tables->miniBatches.push_back(1); // streaming candidate

    const std::size_t numLayers = mod.layers.size();
    tables->costs.resize(tables->miniBatches.size());
    for (std::size_t bi = 0; bi < tables->miniBatches.size(); ++bi) {
        tables->costs[bi].resize(numLayers);
        for (std::size_t l = 0; l < numLayers; ++l) {
            for (Dataflow df : kAllDataflows) {
                tables->costs[bi][l][dataflowIndex(df)] =
                    model.evalLayer(mod.layers[l],
                                    specs[dataflowIndex(df)],
                                    tables->miniBatches[bi]);
            }
        }
    }

    // ---- O(1) range tables over the per-layer costs ---------------
    const std::size_t triSize = numLayers * (numLayers + 1) / 2;
    tables->rangeSums.resize(tables->miniBatches.size());
    for (std::size_t bi = 0; bi < tables->miniBatches.size(); ++bi) {
        const int bPrime = tables->miniBatches[bi];
        for (Dataflow df : kAllDataflows) {
            ModelCostTables::RangeSums& sums =
                tables->rangeSums[bi][dataflowIndex(df)];
            sums.cycles.resize(triSize);
            sums.energyNj.resize(triSize);
            std::size_t rowStart = 0;
            for (std::size_t f = 0; f < numLayers; ++f) {
                // Accumulate in the exact order (and with the
                // exact expression) of the per-segment loop this
                // table replaces, so lookups are bit-identical.
                double cycles = 0.0;
                double energy = 0.0;
                std::size_t idx = rowStart;
                for (std::size_t l = f; l < numLayers; ++l, ++idx) {
                    const LayerCost& lc =
                        tables->costs[bi][l][dataflowIndex(df)];
                    cycles += lc.intraCycles() * bPrime;
                    energy += lc.intraEnergyNj * bPrime;
                    sums.cycles[idx] = cycles;
                    sums.energyNj[idx] = energy;
                }
                rowStart += numLayers - f;
            }
        }
    }

    // Weight bytes are integer-valued (see common/units.h), so
    // plain prefix sums subtract exactly.
    tables->weightPrefix.assign(numLayers + 1, 0.0);
    for (std::size_t l = 0; l < numLayers; ++l) {
        tables->weightPrefix[l + 1] =
            tables->weightPrefix[l] + mod.layers[l].weightBytes();
    }

    // Sparse table over the per-sample activation footprint.
    std::vector<std::vector<double>>& table = tables->actMax;
    table.emplace_back(numLayers);
    for (std::size_t l = 0; l < numLayers; ++l) {
        table[0][l] =
            mod.layers[l].inputBytes() + mod.layers[l].outputBytes();
    }
    for (std::size_t span = 2; span <= numLayers; span *= 2) {
        const std::vector<double>& prev = table.back();
        std::vector<double> level(numLayers - span + 1);
        for (std::size_t i = 0; i + span <= numLayers; ++i)
            level[i] = std::max(prev[i], prev[i + span / 2]);
        table.push_back(std::move(level));
    }

    return tables;
}

/**
 * Content key for one model's table set: FNV-1a over the bit patterns
 * of every input buildModelTables consumes. Layer names/ids are
 * excluded — evalLayer prices dims and type only. 64 bits against a
 * catalog of at most a few thousand distinct models makes an
 * accidental collision vanishingly unlikely.
 */
std::uint64_t
tableKey(const Model& mod,
         const std::array<ChipletSpec, kNumDataflows>& specs,
         double l2Budget, int fixedMiniBatch, const MaestroLite& model)
{
    std::uint64_t h = 1469598103934665603ull;
    const auto mixBytes = [&h](const void* p, std::size_t n) {
        const unsigned char* bytes =
            static_cast<const unsigned char*>(p);
        for (std::size_t i = 0; i < n; ++i)
            h = (h ^ bytes[i]) * 1099511628211ull;
    };
    const auto mixI64 = [&](std::int64_t v) { mixBytes(&v, sizeof v); };
    const auto mixD = [&](double v) { mixBytes(&v, sizeof v); };

    mixI64(fixedMiniBatch);
    mixD(l2Budget);
    mixD(model.energyParams().macPj);
    mixD(model.energyParams().l2PjPerByte);
    for (Dataflow df : kAllDataflows) {
        const ChipletSpec& spec = specs[dataflowIndex(df)];
        mixI64(static_cast<std::int64_t>(spec.dataflow));
        mixI64(spec.numPes);
        mixD(spec.bwNocGBps);
        mixD(spec.bwMemGBps);
        mixD(spec.l2Bytes);
    }
    mixI64(mod.batch);
    mixI64(static_cast<std::int64_t>(mod.layers.size()));
    for (const Layer& layer : mod.layers) {
        mixI64(static_cast<std::int64_t>(layer.type));
        mixI64(layer.dims.k);
        mixI64(layer.dims.c);
        mixI64(layer.dims.r);
        mixI64(layer.dims.s);
        mixI64(layer.dims.y);
        mixI64(layer.dims.x);
        mixI64(layer.dims.strideY);
        mixI64(layer.dims.strideX);
    }
    return h;
}

/**
 * Process-wide table cache. A promise/shared_future per key gives
 * exactly-once builds under concurrency: the first thread to claim a
 * key builds outside the lock while later arrivals wait on the shared
 * future — identical in shape to AsyncScheduleCache's in-flight
 * dedup, minus the virtual-time bookkeeping.
 */
struct TableCache
{
    using Future =
        std::shared_future<std::shared_ptr<const ModelCostTables>>;

    std::mutex mu;
    std::unordered_map<std::uint64_t, Future> map; // guarded by mu
    std::int64_t hits = 0;                         // guarded by mu
    std::int64_t misses = 0;                       // guarded by mu

    static TableCache&
    instance()
    {
        static TableCache cache;
        return cache;
    }
};

/** Backstop against unbounded growth over a very long process. */
constexpr std::size_t kTableCacheCap = 1024;

template <typename BuildFn>
std::shared_ptr<const ModelCostTables>
cachedTables(std::uint64_t key, bool& wasHit, BuildFn&& build)
{
    TableCache& cache = TableCache::instance();
    TableCache::Future fut;
    std::promise<std::shared_ptr<const ModelCostTables>> prom;
    bool builder = false;
    {
        std::lock_guard<std::mutex> lock(cache.mu);
        auto it = cache.map.find(key);
        if (it != cache.map.end()) {
            fut = it->second;
            ++cache.hits;
            wasHit = true;
        } else {
            if (cache.map.size() >= kTableCacheCap)
                cache.map.clear(); // shared_ptrs in use stay valid
            fut = prom.get_future().share();
            cache.map.emplace(key, fut);
            ++cache.misses;
            wasHit = false;
            builder = true;
        }
    }
    if (builder) {
        try {
            prom.set_value(build());
        } catch (...) {
            {
                std::lock_guard<std::mutex> lock(cache.mu);
                cache.map.erase(key);
            }
            prom.set_exception(std::current_exception());
            throw;
        }
    }
    return fut.get();
}

} // namespace

CostDb::CostDb(const Scenario& scenario, const Mcm& mcm, MaestroLite model,
               CostDbOptions options)
    : scenario_(scenario), mcm_(mcm),
      offchipBpc_(gbpsToBytesPerCycle(mcm.params().bwOffchipGBps)),
      dramLatencyCycles_(nsToCycles(mcm.params().dramLatencyNs))
{
    const int numChiplets = mcm.numChiplets();
    std::array<ChipletSpec, kNumDataflows> specs{};
    for (Dataflow df : kAllDataflows) {
        classWeight_[dataflowIndex(df)] =
            static_cast<double>(mcm.numWithDataflow(df)) / numChiplets;
        specs[dataflowIndex(df)] = mcm.specForDataflow(df);
    }

    const double l2Budget = mcm.chiplets().front().spec.l2Bytes / 2.0;
    tables_.reserve(scenario.models.size());
    for (const Model& mod : scenario.models) {
        if (options.reuseTables) {
            bool wasHit = false;
            tables_.push_back(cachedTables(
                tableKey(mod, specs, l2Budget, options.fixedMiniBatch,
                         model),
                wasHit, [&] {
                    return buildModelTables(mod, specs, l2Budget,
                                            options.fixedMiniBatch,
                                            model);
                }));
            ++(wasHit ? tableStats_.hits : tableStats_.misses);
        } else {
            tables_.push_back(buildModelTables(
                mod, specs, l2Budget, options.fixedMiniBatch, model));
        }
    }
}

CostDb::TableStats
CostDb::tableCacheTotals()
{
    TableCache& cache = TableCache::instance();
    std::lock_guard<std::mutex> lock(cache.mu);
    return TableStats{cache.hits, cache.misses};
}

void
CostDb::clearTableCache()
{
    TableCache& cache = TableCache::instance();
    std::lock_guard<std::mutex> lock(cache.mu);
    cache.map.clear();
    cache.hits = 0;
    cache.misses = 0;
}

std::size_t
CostDb::triIndex(int model, int first, int last) const
{
    // Packed upper triangle: rows are `first`, columns run from
    // `first` to L-1; row f starts after the f longer rows before it.
    const std::size_t numLayers =
        scenario_.models[model].layers.size();
    const std::size_t f = static_cast<std::size_t>(first);
    return f * numLayers - f * (f - 1) / 2 +
           static_cast<std::size_t>(last - first);
}

int
CostDb::miniBatchIndex(int model, int bPrime) const
{
    SCAR_ASSERT(model >= 0 &&
                    model < static_cast<int>(tables_.size()),
                "bad model index ", model);
    const auto& candidates = tables_[model]->miniBatches;
    for (std::size_t bi = 0; bi < candidates.size(); ++bi) {
        if (candidates[bi] == bPrime)
            return static_cast<int>(bi);
    }
    panic("mini-batch ", bPrime, " not cached for model ", model);
}

double
CostDb::segmentCycles(int model, int bIdx, Dataflow df, int first,
                      int last) const
{
    obs::SearchCounters::bump(counters_,
                              &obs::SearchCounters::costDbRangeQueries);
    return tables_[model]->rangeSums[bIdx][dataflowIndex(df)]
        .cycles[triIndex(model, first, last)];
}

double
CostDb::segmentEnergyNj(int model, int bIdx, Dataflow df, int first,
                        int last) const
{
    obs::SearchCounters::bump(counters_,
                              &obs::SearchCounters::costDbRangeQueries);
    return tables_[model]->rangeSums[bIdx][dataflowIndex(df)]
        .energyNj[triIndex(model, first, last)];
}

double
CostDb::segmentWeightBytes(int model, int first, int last) const
{
    obs::SearchCounters::bump(counters_,
                              &obs::SearchCounters::costDbRangeQueries);
    const std::vector<double>& prefix = tables_[model]->weightPrefix;
    return prefix[last + 1] - prefix[first];
}

double
CostDb::segmentMaxActBytes(int model, int first, int last) const
{
    obs::SearchCounters::bump(counters_,
                              &obs::SearchCounters::costDbRangeQueries);
    const std::vector<std::vector<double>>& table =
        tables_[model]->actMax;
    const unsigned len = static_cast<unsigned>(last - first + 1);
    // floor(log2(len)) via the leading-zero count; len >= 1 always.
    const int level =
        31 - __builtin_clz(len);
    const std::size_t span = std::size_t{1} << level;
    return std::max(table[level][first],
                    table[level][last + 1 - span]);
}

const std::vector<int>&
CostDb::miniBatchCandidates(int model) const
{
    SCAR_ASSERT(model >= 0 &&
                    model < static_cast<int>(tables_.size()),
                "bad model index ", model);
    return tables_[model]->miniBatches;
}

const LayerCost&
CostDb::costAt(int model, int layer, Dataflow df, int bPrime) const
{
    SCAR_ASSERT(model >= 0 &&
                    model < static_cast<int>(tables_.size()),
                "bad model index ", model);
    const auto& candidates = tables_[model]->miniBatches;
    for (std::size_t bi = 0; bi < candidates.size(); ++bi) {
        if (candidates[bi] == bPrime)
            return tables_[model]->costs[bi][layer][dataflowIndex(df)];
    }
    panic("mini-batch ", bPrime, " not cached for model ", model);
}

int
CostDb::miniBatch(int model) const
{
    SCAR_ASSERT(model >= 0 &&
                    model < static_cast<int>(tables_.size()),
                "bad model index ", model);
    return tables_[model]->miniBatches.front();
}

const LayerCost&
CostDb::cost(int model, int layer, Dataflow df) const
{
    SCAR_ASSERT(model >= 0 &&
                    model < static_cast<int>(tables_.size()),
                "bad model index ", model);
    SCAR_ASSERT(layer >= 0 &&
                    layer < static_cast<int>(
                                tables_[model]->costs[0].size()),
                "bad layer index ", layer, " for model ", model);
    // Default view: the capacity-derived mini-batch (candidate 0).
    return tables_[model]->costs[0][layer][dataflowIndex(df)];
}

double
CostDb::layerCycles(int model, int layer, Dataflow df) const
{
    obs::SearchCounters::bump(counters_,
                              &obs::SearchCounters::costDbLayerQueries);
    const LayerCost& lc = cost(model, layer, df);
    // Per-sample view: intra-chiplet pipeline plus weight streaming.
    return lc.intraCycles() + lc.weightBytes / offchipBpc_ +
           dramLatencyCycles_;
}

double
CostDb::layerEnergyNj(int model, int layer, Dataflow df) const
{
    obs::SearchCounters::bump(counters_,
                              &obs::SearchCounters::costDbLayerQueries);
    const LayerCost& lc = cost(model, layer, df);
    const double dramNj =
        pjToNj(lc.weightBytes * 8.0 * mcm_.params().dramEnergyPjPerBit);
    return lc.intraEnergyNj + dramNj;
}

double
CostDb::expectedLayerCycles(int model, int layer) const
{
    double expected = 0.0;
    for (Dataflow df : kAllDataflows) {
        const double w = classWeight_[dataflowIndex(df)];
        if (w > 0.0)
            expected += w * layerCycles(model, layer, df);
    }
    return expected;
}

double
CostDb::expectedLayerEnergyNj(int model, int layer) const
{
    double expected = 0.0;
    for (Dataflow df : kAllDataflows) {
        const double w = classWeight_[dataflowIndex(df)];
        if (w > 0.0)
            expected += w * layerEnergyNj(model, layer, df);
    }
    return expected;
}

} // namespace scar
