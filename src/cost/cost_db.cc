#include "cost/cost_db.h"
#include <algorithm>

#include "common/error.h"
#include "common/units.h"

namespace scar
{

CostDb::CostDb(const Scenario& scenario, const Mcm& mcm, MaestroLite model,
               CostDbOptions options)
    : scenario_(scenario), mcm_(mcm),
      offchipBpc_(gbpsToBytesPerCycle(mcm.params().bwOffchipGBps)),
      dramLatencyCycles_(nsToCycles(mcm.params().dramLatencyNs))
{
    const int numChiplets = mcm.numChiplets();
    for (Dataflow df : kAllDataflows) {
        classWeight_[dataflowIndex(df)] =
            static_cast<double>(mcm.numWithDataflow(df)) / numChiplets;
    }

    costs_.resize(scenario.models.size());
    miniBatches_.resize(scenario.models.size());
    const double l2Budget = mcm.chiplets().front().spec.l2Bytes / 2.0;
    for (std::size_t m = 0; m < scenario.models.size(); ++m) {
        const Model& mod = scenario.models[m];

        int capacityMiniBatch = 1;
        if (options.fixedMiniBatch > 0) {
            capacityMiniBatch =
                std::min(options.fixedMiniBatch, mod.batch);
        } else {
            double maxAct = 1.0;
            for (const Layer& layer : mod.layers) {
                maxAct = std::max(maxAct, layer.inputBytes() +
                                              layer.outputBytes());
            }
            const int capacityBatch =
                std::max(1, static_cast<int>(l2Budget / maxAct));
            capacityMiniBatch = std::min(mod.batch, capacityBatch);
        }
        miniBatches_[m].push_back(capacityMiniBatch);
        if (capacityMiniBatch > 1 && options.fixedMiniBatch == 0)
            miniBatches_[m].push_back(1); // streaming candidate

        costs_[m].resize(miniBatches_[m].size());
        for (std::size_t bi = 0; bi < miniBatches_[m].size(); ++bi) {
            costs_[m][bi].resize(mod.layers.size());
            for (std::size_t l = 0; l < mod.layers.size(); ++l) {
                for (Dataflow df : kAllDataflows) {
                    ChipletSpec spec = mcm.specForDataflow(df);
                    costs_[m][bi][l][dataflowIndex(df)] =
                        model.evalLayer(mod.layers[l], spec,
                                        miniBatches_[m][bi]);
                }
            }
        }
    }
}

const std::vector<int>&
CostDb::miniBatchCandidates(int model) const
{
    SCAR_ASSERT(model >= 0 &&
                    model < static_cast<int>(miniBatches_.size()),
                "bad model index ", model);
    return miniBatches_[model];
}

const LayerCost&
CostDb::costAt(int model, int layer, Dataflow df, int bPrime) const
{
    SCAR_ASSERT(model >= 0 &&
                    model < static_cast<int>(costs_.size()),
                "bad model index ", model);
    const auto& candidates = miniBatches_[model];
    for (std::size_t bi = 0; bi < candidates.size(); ++bi) {
        if (candidates[bi] == bPrime)
            return costs_[model][bi][layer][dataflowIndex(df)];
    }
    panic("mini-batch ", bPrime, " not cached for model ", model);
}

int
CostDb::miniBatch(int model) const
{
    SCAR_ASSERT(model >= 0 &&
                    model < static_cast<int>(miniBatches_.size()),
                "bad model index ", model);
    return miniBatches_[model].front();
}

const LayerCost&
CostDb::cost(int model, int layer, Dataflow df) const
{
    SCAR_ASSERT(model >= 0 &&
                    model < static_cast<int>(costs_.size()),
                "bad model index ", model);
    SCAR_ASSERT(layer >= 0 &&
                    layer < static_cast<int>(costs_[model][0].size()),
                "bad layer index ", layer, " for model ", model);
    // Default view: the capacity-derived mini-batch (candidate 0).
    return costs_[model][0][layer][dataflowIndex(df)];
}

double
CostDb::layerCycles(int model, int layer, Dataflow df) const
{
    const LayerCost& lc = cost(model, layer, df);
    // Per-sample view: intra-chiplet pipeline plus weight streaming.
    return lc.intraCycles() + lc.weightBytes / offchipBpc_ +
           dramLatencyCycles_;
}

double
CostDb::layerEnergyNj(int model, int layer, Dataflow df) const
{
    const LayerCost& lc = cost(model, layer, df);
    const double dramNj =
        pjToNj(lc.weightBytes * 8.0 * mcm_.params().dramEnergyPjPerBit);
    return lc.intraEnergyNj + dramNj;
}

double
CostDb::expectedLayerCycles(int model, int layer) const
{
    double expected = 0.0;
    for (Dataflow df : kAllDataflows) {
        const double w = classWeight_[dataflowIndex(df)];
        if (w > 0.0)
            expected += w * layerCycles(model, layer, df);
    }
    return expected;
}

double
CostDb::expectedLayerEnergyNj(int model, int layer) const
{
    double expected = 0.0;
    for (Dataflow df : kAllDataflows) {
        const double w = classWeight_[dataflowIndex(df)];
        if (w > 0.0)
            expected += w * layerEnergyNj(model, layer, df);
    }
    return expected;
}

} // namespace scar
