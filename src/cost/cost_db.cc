#include "cost/cost_db.h"
#include <algorithm>

#include "common/error.h"
#include "common/units.h"

namespace scar
{

CostDb::CostDb(const Scenario& scenario, const Mcm& mcm, MaestroLite model,
               CostDbOptions options)
    : scenario_(scenario), mcm_(mcm),
      offchipBpc_(gbpsToBytesPerCycle(mcm.params().bwOffchipGBps)),
      dramLatencyCycles_(nsToCycles(mcm.params().dramLatencyNs))
{
    const int numChiplets = mcm.numChiplets();
    for (Dataflow df : kAllDataflows) {
        classWeight_[dataflowIndex(df)] =
            static_cast<double>(mcm.numWithDataflow(df)) / numChiplets;
    }

    costs_.resize(scenario.models.size());
    miniBatches_.resize(scenario.models.size());
    const double l2Budget = mcm.chiplets().front().spec.l2Bytes / 2.0;
    for (std::size_t m = 0; m < scenario.models.size(); ++m) {
        const Model& mod = scenario.models[m];

        int capacityMiniBatch = 1;
        if (options.fixedMiniBatch > 0) {
            capacityMiniBatch =
                std::min(options.fixedMiniBatch, mod.batch);
        } else {
            double maxAct = 1.0;
            for (const Layer& layer : mod.layers) {
                maxAct = std::max(maxAct, layer.inputBytes() +
                                              layer.outputBytes());
            }
            const int capacityBatch =
                std::max(1, static_cast<int>(l2Budget / maxAct));
            capacityMiniBatch = std::min(mod.batch, capacityBatch);
        }
        miniBatches_[m].push_back(capacityMiniBatch);
        if (capacityMiniBatch > 1 && options.fixedMiniBatch == 0)
            miniBatches_[m].push_back(1); // streaming candidate

        costs_[m].resize(miniBatches_[m].size());
        for (std::size_t bi = 0; bi < miniBatches_[m].size(); ++bi) {
            costs_[m][bi].resize(mod.layers.size());
            for (std::size_t l = 0; l < mod.layers.size(); ++l) {
                for (Dataflow df : kAllDataflows) {
                    ChipletSpec spec = mcm.specForDataflow(df);
                    costs_[m][bi][l][dataflowIndex(df)] =
                        model.evalLayer(mod.layers[l], spec,
                                        miniBatches_[m][bi]);
                }
            }
        }
    }

    buildRangeTables();
}

std::size_t
CostDb::triIndex(int model, int first, int last) const
{
    // Packed upper triangle: rows are `first`, columns run from
    // `first` to L-1; row f starts after the f longer rows before it.
    const std::size_t numLayers =
        scenario_.models[model].layers.size();
    const std::size_t f = static_cast<std::size_t>(first);
    return f * numLayers - f * (f - 1) / 2 +
           static_cast<std::size_t>(last - first);
}

void
CostDb::buildRangeTables()
{
    const std::size_t numModels = scenario_.models.size();
    rangeSums_.resize(numModels);
    weightPrefix_.resize(numModels);
    actMax_.resize(numModels);

    for (std::size_t m = 0; m < numModels; ++m) {
        const Model& mod = scenario_.models[m];
        const std::size_t numLayers = mod.layers.size();
        const std::size_t triSize = numLayers * (numLayers + 1) / 2;

        rangeSums_[m].resize(miniBatches_[m].size());
        for (std::size_t bi = 0; bi < miniBatches_[m].size(); ++bi) {
            const int bPrime = miniBatches_[m][bi];
            for (Dataflow df : kAllDataflows) {
                RangeSums& sums = rangeSums_[m][bi][dataflowIndex(df)];
                sums.cycles.resize(triSize);
                sums.energyNj.resize(triSize);
                for (std::size_t f = 0; f < numLayers; ++f) {
                    // Accumulate in the exact order (and with the
                    // exact expression) of the per-segment loop this
                    // table replaces, so lookups are bit-identical.
                    double cycles = 0.0;
                    double energy = 0.0;
                    std::size_t idx = triIndex(static_cast<int>(m),
                                               static_cast<int>(f),
                                               static_cast<int>(f));
                    for (std::size_t l = f; l < numLayers;
                         ++l, ++idx) {
                        const LayerCost& lc =
                            costs_[m][bi][l][dataflowIndex(df)];
                        cycles += lc.intraCycles() * bPrime;
                        energy += lc.intraEnergyNj * bPrime;
                        sums.cycles[idx] = cycles;
                        sums.energyNj[idx] = energy;
                    }
                }
            }
        }

        // Weight bytes are integer-valued (see common/units.h), so
        // plain prefix sums subtract exactly.
        weightPrefix_[m].assign(numLayers + 1, 0.0);
        for (std::size_t l = 0; l < numLayers; ++l) {
            weightPrefix_[m][l + 1] =
                weightPrefix_[m][l] + mod.layers[l].weightBytes();
        }

        // Sparse table over the per-sample activation footprint.
        std::vector<std::vector<double>>& table = actMax_[m];
        table.emplace_back(numLayers);
        for (std::size_t l = 0; l < numLayers; ++l) {
            table[0][l] =
                mod.layers[l].inputBytes() + mod.layers[l].outputBytes();
        }
        for (std::size_t span = 2; span <= numLayers; span *= 2) {
            const std::vector<double>& prev = table.back();
            std::vector<double> level(numLayers - span + 1);
            for (std::size_t i = 0; i + span <= numLayers; ++i)
                level[i] = std::max(prev[i], prev[i + span / 2]);
            table.push_back(std::move(level));
        }
    }
}

int
CostDb::miniBatchIndex(int model, int bPrime) const
{
    SCAR_ASSERT(model >= 0 &&
                    model < static_cast<int>(miniBatches_.size()),
                "bad model index ", model);
    const auto& candidates = miniBatches_[model];
    for (std::size_t bi = 0; bi < candidates.size(); ++bi) {
        if (candidates[bi] == bPrime)
            return static_cast<int>(bi);
    }
    panic("mini-batch ", bPrime, " not cached for model ", model);
}

double
CostDb::segmentCycles(int model, int bIdx, Dataflow df, int first,
                      int last) const
{
    obs::SearchCounters::bump(counters_,
                              &obs::SearchCounters::costDbRangeQueries);
    return rangeSums_[model][bIdx][dataflowIndex(df)]
        .cycles[triIndex(model, first, last)];
}

double
CostDb::segmentEnergyNj(int model, int bIdx, Dataflow df, int first,
                        int last) const
{
    obs::SearchCounters::bump(counters_,
                              &obs::SearchCounters::costDbRangeQueries);
    return rangeSums_[model][bIdx][dataflowIndex(df)]
        .energyNj[triIndex(model, first, last)];
}

double
CostDb::segmentWeightBytes(int model, int first, int last) const
{
    obs::SearchCounters::bump(counters_,
                              &obs::SearchCounters::costDbRangeQueries);
    return weightPrefix_[model][last + 1] - weightPrefix_[model][first];
}

double
CostDb::segmentMaxActBytes(int model, int first, int last) const
{
    obs::SearchCounters::bump(counters_,
                              &obs::SearchCounters::costDbRangeQueries);
    const std::vector<std::vector<double>>& table = actMax_[model];
    const unsigned len = static_cast<unsigned>(last - first + 1);
    // floor(log2(len)) via the leading-zero count; len >= 1 always.
    const int level =
        31 - __builtin_clz(len);
    const std::size_t span = std::size_t{1} << level;
    return std::max(table[level][first],
                    table[level][last + 1 - span]);
}

const std::vector<int>&
CostDb::miniBatchCandidates(int model) const
{
    SCAR_ASSERT(model >= 0 &&
                    model < static_cast<int>(miniBatches_.size()),
                "bad model index ", model);
    return miniBatches_[model];
}

const LayerCost&
CostDb::costAt(int model, int layer, Dataflow df, int bPrime) const
{
    SCAR_ASSERT(model >= 0 &&
                    model < static_cast<int>(costs_.size()),
                "bad model index ", model);
    const auto& candidates = miniBatches_[model];
    for (std::size_t bi = 0; bi < candidates.size(); ++bi) {
        if (candidates[bi] == bPrime)
            return costs_[model][bi][layer][dataflowIndex(df)];
    }
    panic("mini-batch ", bPrime, " not cached for model ", model);
}

int
CostDb::miniBatch(int model) const
{
    SCAR_ASSERT(model >= 0 &&
                    model < static_cast<int>(miniBatches_.size()),
                "bad model index ", model);
    return miniBatches_[model].front();
}

const LayerCost&
CostDb::cost(int model, int layer, Dataflow df) const
{
    SCAR_ASSERT(model >= 0 &&
                    model < static_cast<int>(costs_.size()),
                "bad model index ", model);
    SCAR_ASSERT(layer >= 0 &&
                    layer < static_cast<int>(costs_[model][0].size()),
                "bad layer index ", layer, " for model ", model);
    // Default view: the capacity-derived mini-batch (candidate 0).
    return costs_[model][0][layer][dataflowIndex(df)];
}

double
CostDb::layerCycles(int model, int layer, Dataflow df) const
{
    obs::SearchCounters::bump(counters_,
                              &obs::SearchCounters::costDbLayerQueries);
    const LayerCost& lc = cost(model, layer, df);
    // Per-sample view: intra-chiplet pipeline plus weight streaming.
    return lc.intraCycles() + lc.weightBytes / offchipBpc_ +
           dramLatencyCycles_;
}

double
CostDb::layerEnergyNj(int model, int layer, Dataflow df) const
{
    obs::SearchCounters::bump(counters_,
                              &obs::SearchCounters::costDbLayerQueries);
    const LayerCost& lc = cost(model, layer, df);
    const double dramNj =
        pjToNj(lc.weightBytes * 8.0 * mcm_.params().dramEnergyPjPerBit);
    return lc.intraEnergyNj + dramNj;
}

double
CostDb::expectedLayerCycles(int model, int layer) const
{
    double expected = 0.0;
    for (Dataflow df : kAllDataflows) {
        const double w = classWeight_[dataflowIndex(df)];
        if (w > 0.0)
            expected += w * layerCycles(model, layer, df);
    }
    return expected;
}

double
CostDb::expectedLayerEnergyNj(int model, int layer) const
{
    double expected = 0.0;
    for (Dataflow df : kAllDataflows) {
        const double w = classWeight_[dataflowIndex(df)];
        if (w > 0.0)
            expected += w * layerEnergyNj(model, layer, df);
    }
    return expected;
}

} // namespace scar
