#include "cost/maestro_lite.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/units.h"

namespace scar
{

namespace
{

double
ceilDiv(double a, double b)
{
    return std::ceil(a / b);
}

} // namespace

LayerCost
MaestroLite::evalLayer(const Layer& layer, const ChipletSpec& spec,
                       int miniBatch) const
{
    SCAR_REQUIRE(spec.numPes >= 1, "chiplet needs at least one PE");
    SCAR_REQUIRE(miniBatch >= 1, "mini-batch must be >= 1");
    switch (layer.type) {
      case OpType::Pool:
      case OpType::Elementwise:
        return evalSpatialOnly(layer, spec, miniBatch);
      case OpType::Conv2D:
      case OpType::DepthwiseConv:
      case OpType::Gemm:
        break;
    }
    switch (spec.dataflow) {
      case Dataflow::NvdlaWS:
        return evalWeightStationary(layer, spec, miniBatch);
      case Dataflow::ShiOS:
        return evalOutputStationary(layer, spec, miniBatch);
      case Dataflow::EyerissRS:
        return evalRowStationary(layer, spec, miniBatch);
    }
    return evalWeightStationary(layer, spec, miniBatch);
}

LayerCost
MaestroLite::evalRowStationary(const Layer& layer,
                               const ChipletSpec& spec,
                               int miniBatch) const
{
    const auto& d = layer.dims;
    const double k = static_cast<double>(d.k);
    const double c = layer.type == OpType::DepthwiseConv
                         ? 1.0
                         : static_cast<double>(d.c);
    const double window = static_cast<double>(d.r) * d.s;
    const double outX = static_cast<double>(layer.outX());
    const double npes = spec.numPes;
    const double nb = miniBatch;

    // Row-stationary: spatial mapping over (K, output rows); batch
    // samples contribute extra rows. The K-tile is searched as in the
    // weight-stationary case; rows take the remaining PEs.
    const double rows = static_cast<double>(layer.outY()) * nb;
    const int ktMax = static_cast<int>(std::min<double>(k, npes));
    double bestPasses = 0.0;
    double bestKt = 0.0;
    double bestYt = 0.0;
    for (int kt = 1; kt <= ktMax; ++kt) {
        const double yt = std::min(rows, std::floor(npes / kt));
        if (yt < 1.0)
            break;
        const double passes = ceilDiv(k, kt) * ceilDiv(rows, yt);
        if (bestKt == 0.0 || passes < bestPasses) {
            bestPasses = passes;
            bestKt = kt;
            bestYt = yt;
        }
    }

    LayerCost cost;
    cost.macs = layer.macs();
    cost.computeCycles = bestPasses * c * window * outX / nb;

    // Filter rows stay in PEs across a row pass; inputs re-stream per
    // K pass; partial sums accumulate within the row (no L2 spill).
    const double kPasses = ceilDiv(k, bestKt);
    const double rowPasses = ceilDiv(rows, bestYt);
    const double inputReads = layer.inputBytes() * kPasses;
    const double weightReads = layer.weightBytes() * rowPasses / nb;
    cost.l2AccessBytes =
        weightReads + inputReads + layer.outputBytes();
    finishCost(layer, spec, cost);
    return cost;
}

LayerCost
MaestroLite::evalWeightStationary(const Layer& layer,
                                  const ChipletSpec& spec,
                                  int miniBatch) const
{
    const auto& d = layer.dims;
    const double k = static_cast<double>(d.k);
    // Depthwise layers have no cross-channel reduction to parallelize.
    const double c = layer.type == OpType::DepthwiseConv
                         ? 1.0
                         : static_cast<double>(d.c);
    const double window = static_cast<double>(d.r) * d.s;
    const double spatialOut = static_cast<double>(layer.outY()) *
                              layer.outX();
    const double npes = spec.numPes;
    const double nb = miniBatch;

    // Search the K-tile size; the C-tile takes the remaining PEs.
    // Cost = (#K passes) * (#C passes) * R*S*OY*OX cycles per sample;
    // ties break toward the tiling with the least L2 traffic (input
    // re-streams per K pass, partial-sum spills per extra C pass).
    const int ktMax = static_cast<int>(std::min<double>(k, npes));
    double bestPasses = 0.0;
    double bestTraffic = 0.0;
    double bestKt = 0.0;
    double bestCt = 0.0;
    for (int kt = 1; kt <= ktMax; ++kt) {
        const double ct = std::min(c, std::floor(npes / kt));
        if (ct < 1.0)
            break;
        const double passes = ceilDiv(k, kt) * ceilDiv(c, ct);
        const double traffic =
            layer.inputBytes() * ceilDiv(k, kt) +
            2.0 * layer.outputBytes() * (ceilDiv(c, ct) - 1.0);
        if (bestKt == 0.0 || passes < bestPasses ||
            (passes == bestPasses && traffic < bestTraffic)) {
            bestPasses = passes;
            bestTraffic = traffic;
            bestKt = kt;
            bestCt = ct;
        }
    }

    LayerCost cost;
    cost.macs = layer.macs();
    // Batch extends the temporal output loop: per-sample cycles are
    // unchanged, but weights stay in the array across the mini-batch.
    cost.computeCycles = bestPasses * window * spatialOut;

    const double kPasses = ceilDiv(k, bestKt);
    const double cPasses = ceilDiv(c, bestCt);
    const double inputReads = layer.type == OpType::DepthwiseConv
                                  ? layer.inputBytes()
                                  : layer.inputBytes() * kPasses;
    const double psumTraffic =
        2.0 * layer.outputBytes() * std::max(0.0, cPasses - 1.0);
    // Weights are fetched once per mini-batch: amortized per sample.
    cost.l2AccessBytes = layer.weightBytes() / nb + inputReads +
                         psumTraffic + layer.outputBytes();
    finishCost(layer, spec, cost);
    return cost;
}

LayerCost
MaestroLite::evalOutputStationary(const Layer& layer,
                                  const ChipletSpec& spec,
                                  int miniBatch) const
{
    const auto& d = layer.dims;
    const double k = static_cast<double>(d.k);
    const double c = layer.type == OpType::DepthwiseConv
                         ? 1.0
                         : static_cast<double>(d.c);
    const double window = static_cast<double>(d.r) * d.s;
    const double spatialOut = static_cast<double>(layer.outY()) *
                              layer.outX();
    const double npes = spec.numPes;
    const double nb = miniBatch;

    // Batch samples contribute additional independent output pixels:
    // the OS spatial mapping covers OY*OX*nb positions.
    const double totalOut = spatialOut * nb;
    const double pt = std::min(totalOut, npes);
    const double passes = ceilDiv(totalOut, pt);

    LayerCost cost;
    cost.macs = layer.macs();
    cost.computeCycles = passes * k * c * window / nb;

    // Weights re-stream once per spatial pass; the input tile is held
    // in PE-local storage across the temporal K/C loops (ShiDianNao's
    // neighbour-sharing register array), so each sample's input is
    // fetched from L2 once. Outputs, being stationary, write once.
    const double weightReads = layer.weightBytes() * passes / nb;
    cost.l2AccessBytes =
        weightReads + layer.inputBytes() + layer.outputBytes();
    finishCost(layer, spec, cost);
    return cost;
}

LayerCost
MaestroLite::evalSpatialOnly(const Layer& layer, const ChipletSpec& spec,
                             int miniBatch) const
{
    const double outs = layer.outputElems() * miniBatch;
    const double window = static_cast<double>(layer.dims.r) * layer.dims.s;
    const double p = std::min(outs, static_cast<double>(spec.numPes));

    LayerCost cost;
    cost.macs = layer.macs();
    cost.computeCycles = ceilDiv(outs, p) * window / miniBatch;
    cost.l2AccessBytes = layer.inputBytes() + layer.outputBytes();
    finishCost(layer, spec, cost);
    return cost;
}

void
MaestroLite::finishCost(const Layer& layer, const ChipletSpec& spec,
                        LayerCost& cost) const
{
    cost.weightBytes = layer.weightBytes();
    cost.inputBytes = layer.inputBytes();
    cost.outputBytes = layer.outputBytes();

    const double feedBw = std::min(spec.bwNocGBps, spec.bwMemGBps);
    cost.streamCycles = cost.l2AccessBytes / gbpsToBytesPerCycle(feedBw);
    cost.utilization =
        cost.macs / (cost.computeCycles * spec.numPes);
    cost.intraEnergyNj = pjToNj(cost.macs * energy_.macPj +
                                cost.l2AccessBytes * energy_.l2PjPerByte);
}

} // namespace scar
