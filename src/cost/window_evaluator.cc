#include "cost/window_evaluator.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <map>

#include "common/error.h"

namespace scar
{

WindowEvaluator::WindowEvaluator(const CostDb& db, EvaluatorOptions options)
    : db_(db), comm_(db.mcm()), options_(options)
{
}

void
WindowEvaluator::validate(const WindowPlacement& placement) const
{
    const Scenario& sc = db_.scenario();
    std::vector<int> occupancy(db_.mcm().numChiplets(), 0);
    for (const ModelPlacement& mp : placement.models) {
        SCAR_REQUIRE(mp.modelIdx >= 0 && mp.modelIdx < sc.numModels(),
                     "bad model index ", mp.modelIdx);
        const Model& model = sc.models[mp.modelIdx];
        SCAR_REQUIRE(!mp.segments.empty(), "model ", model.name,
                     " placed with no segments");
        int prevLast = mp.segments.front().range.first - 1;
        for (const PlacedSegment& seg : mp.segments) {
            SCAR_REQUIRE(!seg.range.empty(), "empty segment for model ",
                         model.name);
            SCAR_REQUIRE(seg.range.first == prevLast + 1,
                         "segments must be contiguous for model ",
                         model.name, " (got first=", seg.range.first,
                         " after last=", prevLast, ")");
            SCAR_REQUIRE(seg.range.last < model.numLayers(),
                         "segment exceeds model ", model.name);
            SCAR_REQUIRE(seg.chiplet >= 0 &&
                             seg.chiplet < db_.mcm().numChiplets(),
                         "bad chiplet id ", seg.chiplet);
            SCAR_REQUIRE(occupancy[seg.chiplet] == 0,
                         "chiplet ", seg.chiplet,
                         " hosts more than one segment in this window");
            occupancy[seg.chiplet] = 1;
            prevLast = seg.range.last;
        }
    }
}

WindowCost
WindowEvaluator::evaluate(const WindowPlacement& placement) const
{
    validate(placement);
    const Scenario& sc = db_.scenario();
    const Mcm& mcm = db_.mcm();

    auto entryOf = [&](int modelIdx) {
        if (modelIdx < static_cast<int>(placement.entryChiplet.size()))
            return placement.entryChiplet[modelIdx];
        return -1;
    };
    auto segmentWeights = [&](const Model& model,
                              const PlacedSegment& seg) {
        double bytes = 0.0;
        for (int l = seg.range.first; l <= seg.range.last; ++l)
            bytes += model.layers[l].weightBytes();
        return bytes;
    };
    auto segmentResident = [&](const Model& model,
                               const PlacedSegment& seg, int bPrime) {
        const double weights = segmentWeights(model, seg);
        double maxAct = 0.0;
        for (int l = seg.range.first; l <= seg.range.last; ++l) {
            maxAct = std::max(maxAct,
                              (model.layers[l].inputBytes() +
                               model.layers[l].outputBytes()) * bPrime);
        }
        const double l2 = mcm.chiplet(seg.chiplet).spec.l2Bytes;
        return weights + maxAct <= l2;
    };

    // Evaluates one model's placement at a given mini-batch, pricing
    // NoP transfers with the supplied contention factor.
    using FactorFn = std::function<int(int, int)>;
    auto evalModel = [&](const ModelPlacement& mp, int bPrime,
                         const FactorFn& factor) {
        const Model& model = sc.models[mp.modelIdx];
        const int b = model.batch;
        const int steps =
            static_cast<int>(std::ceil(static_cast<double>(b) / bPrime));

        ModelWindowCost modelCost;
        double maxSteady = 0.0;
        for (std::size_t k = 0; k < mp.segments.size(); ++k) {
            const PlacedSegment& seg = mp.segments[k];
            const int c = seg.chiplet;
            const Dataflow df = mcm.chiplet(c).spec.dataflow;
            const Layer& first = model.layers[seg.range.first];
            const Layer& last = model.layers[seg.range.last];

            double compute = 0.0;
            double intraEnergy = 0.0;
            for (int l = seg.range.first; l <= seg.range.last; ++l) {
                const LayerCost& lc =
                    db_.costAt(mp.modelIdx, l, df, bPrime);
                compute += lc.intraCycles() * bPrime;
                intraEnergy += lc.intraEnergyNj * bPrime;
            }

            // Input side: DRAM or entry-chiplet NoP for the head
            // segment, inter-segment NoP otherwise.
            double ipLat = 0.0;
            double ipEnergy = 0.0;
            if (k == 0) {
                const double bytes = first.inputBytes() * bPrime;
                const int entry = entryOf(mp.modelIdx);
                if (entry >= 0) {
                    ipLat = comm_.nopLatencyCycles(
                        bytes * factor(entry, c), entry, c);
                    ipEnergy = comm_.nopEnergyNj(bytes, entry, c);
                } else {
                    ipLat = comm_.dramLatencyCycles(bytes, c);
                    ipEnergy = comm_.dramEnergyNj(bytes, c);
                }
            } else {
                const int prevC = mp.segments[k - 1].chiplet;
                const Layer& prevLast =
                    model.layers[mp.segments[k - 1].range.last];
                const double bytes = prevLast.outputBytes() * bPrime;
                ipLat = comm_.nopLatencyCycles(
                    bytes * factor(prevC, c), prevC, c);
                ipEnergy = comm_.nopEnergyNj(bytes, prevC, c);
            }

            // Output side: DRAM writeback only when the model's final
            // layer completes here.
            double opLat = 0.0;
            double opEnergy = 0.0;
            if (k + 1 == mp.segments.size() &&
                seg.range.last == model.numLayers() - 1) {
                const double bytes = last.outputBytes() * bPrime;
                opLat = comm_.dramLatencyCycles(bytes, c);
                opEnergy = comm_.dramEnergyNj(bytes, c);
            }

            const bool resident = segmentResident(model, seg, bPrime);
            const double wBytes = segmentWeights(model, seg);
            const double wLat = comm_.dramLatencyCycles(wBytes, c);
            const double wEnergy = comm_.dramEnergyNj(wBytes, c);

            SegmentCost segCost;
            segCost.weightsResident = resident;
            segCost.steadySampleCycles =
                ipLat + compute + opLat + (resident ? 0.0 : wLat);
            segCost.firstSampleCycles =
                segCost.steadySampleCycles + (resident ? wLat : 0.0);
            segCost.energyNj = steps * (intraEnergy + ipEnergy +
                                        opEnergy) +
                               wEnergy * (resident ? 1.0 : steps);

            maxSteady = std::max(maxSteady, segCost.steadySampleCycles);
            modelCost.energyNj += segCost.energyNj;
            modelCost.segments.push_back(segCost);
        }

        // The pipelining formula of Section III-E:
        // sum_k Lat(sg_k|b') + (b/b' - 1) * max_k Lat(sg_k|b').
        for (const SegmentCost& segCost : modelCost.segments)
            modelCost.latencyCycles += segCost.firstSampleCycles;
        modelCost.latencyCycles += (steps - 1) * maxSteady;
        return modelCost;
    };

    const FactorFn noContention = [](int, int) { return 1; };

    // ---- Step 1: choose the mini-batch b' per model. Section III-E
    // leaves b' <= b free; candidates are capacity folding vs
    // streaming, compared contention-free by latency.
    std::vector<int> chosenBPrime(placement.models.size(), 1);
    for (std::size_t mi = 0; mi < placement.models.size(); ++mi) {
        const ModelPlacement& mp = placement.models[mi];
        double bestLat = std::numeric_limits<double>::infinity();
        for (int candidate : db_.miniBatchCandidates(mp.modelIdx)) {
            const double lat =
                evalModel(mp, candidate, noContention).latencyCycles;
            if (lat < bestLat) {
                bestLat = lat;
                chosenBPrime[mi] = candidate;
            }
        }
    }

    // ---- Step 2: enumerate flows for the contention model. --------
    std::vector<Flow> flows;
    double totalDramBytes = 0.0;
    for (std::size_t mi = 0; mi < placement.models.size(); ++mi) {
        const ModelPlacement& mp = placement.models[mi];
        const Model& model = sc.models[mp.modelIdx];
        const int b = model.batch;
        const int steps = static_cast<int>(
            std::ceil(static_cast<double>(b) / chosenBPrime[mi]));
        for (std::size_t k = 0; k < mp.segments.size(); ++k) {
            const PlacedSegment& seg = mp.segments[k];
            const int c = seg.chiplet;
            const int mem = mcm.nearestMemInterface(c);
            const Layer& first = model.layers[seg.range.first];
            const Layer& last = model.layers[seg.range.last];

            const bool resident =
                segmentResident(model, seg, chosenBPrime[mi]);
            // Non-resident weights re-stream once per mini-batch step.
            const double wBytes = segmentWeights(model, seg) *
                                  (resident ? 1.0 : steps);
            flows.push_back({mem, c, wBytes, true});
            totalDramBytes += wBytes;

            if (k == 0) {
                const double inBytes = first.inputBytes() * b;
                const int entry = entryOf(mp.modelIdx);
                if (entry >= 0) {
                    flows.push_back({entry, c, inBytes, false});
                } else {
                    flows.push_back({mem, c, inBytes, true});
                    totalDramBytes += inBytes;
                }
            } else {
                const PlacedSegment& prev = mp.segments[k - 1];
                const Layer& prevLast = model.layers[prev.range.last];
                flows.push_back(
                    {prev.chiplet, c, prevLast.outputBytes() * b, false});
            }
            // Only the model's final layer writes results off-chip; a
            // model continuing into a later window hands its data to
            // that window's head segment (consumer side, NoP-priced).
            const bool modelEnds =
                seg.range.last == model.numLayers() - 1;
            if (k + 1 == mp.segments.size() && modelEnds) {
                const double outBytes = last.outputBytes() * b;
                flows.push_back({c, mem, outBytes, true});
                totalDramBytes += outBytes;
            }
        }
    }

    // Per-link flow counts over the routed paths.
    std::map<Link, int> linkLoad;
    if (options_.contention) {
        for (const Flow& f : flows) {
            if (f.src == f.dst || f.bytes <= 0.0)
                continue;
            for (const Link& link :
                 mcm.topology().routeLinks(f.src, f.dst)) {
                ++linkLoad[link];
            }
        }
    }
    const FactorFn contentionFactor = [&](int src, int dst) {
        if (!options_.contention || src == dst)
            return 1;
        int sharers = 1;
        for (const Link& link : mcm.topology().routeLinks(src, dst))
            sharers = std::max(sharers, linkLoad[link]);
        return sharers;
    };

    // ---- Step 3: final costs with contention. ----------------------
    WindowCost window;
    window.dramBytes = totalDramBytes;
    for (const auto& [link, load] : linkLoad)
        window.maxLinkSharers = std::max(window.maxLinkSharers, load);

    for (std::size_t mi = 0; mi < placement.models.size(); ++mi) {
        ModelWindowCost modelCost =
            evalModel(placement.models[mi], chosenBPrime[mi],
                      options_.contention ? contentionFactor
                                          : noContention);
        window.latencyCycles =
            std::max(window.latencyCycles, modelCost.latencyCycles);
        window.energyNj += modelCost.energyNj;
        window.perModel.push_back(std::move(modelCost));
    }

    if (options_.dramRoofline) {
        window.dramBoundCycles =
            totalDramBytes / comm_.offchipBytesPerCycle();
        window.latencyCycles =
            std::max(window.latencyCycles, window.dramBoundCycles);
    }
    return window;
}

} // namespace scar
