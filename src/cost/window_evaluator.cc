#include "cost/window_evaluator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

#include "common/error.h"
#include "obs/solve_profile.h"

namespace scar
{

WindowEvaluator::WindowEvaluator(const CostDb& db, EvaluatorOptions options)
    : db_(db), comm_(db.mcm()), options_(options)
{
}

void
WindowEvaluator::validate(const WindowPlacement& placement) const
{
    const Scenario& sc = db_.scenario();
    std::vector<int> occupancy(db_.mcm().numChiplets(), 0);
    for (const ModelPlacement& mp : placement.models) {
        SCAR_REQUIRE(mp.modelIdx >= 0 && mp.modelIdx < sc.numModels(),
                     "bad model index ", mp.modelIdx);
        const Model& model = sc.models[mp.modelIdx];
        SCAR_REQUIRE(!mp.segments.empty(), "model ", model.name,
                     " placed with no segments");
        int prevLast = mp.segments.front().range.first - 1;
        for (const PlacedSegment& seg : mp.segments) {
            SCAR_REQUIRE(!seg.range.empty(), "empty segment for model ",
                         model.name);
            SCAR_REQUIRE(seg.range.first == prevLast + 1,
                         "segments must be contiguous for model ",
                         model.name, " (got first=", seg.range.first,
                         " after last=", prevLast, ")");
            SCAR_REQUIRE(seg.range.last < model.numLayers(),
                         "segment exceeds model ", model.name);
            SCAR_REQUIRE(seg.chiplet >= 0 &&
                             seg.chiplet < db_.mcm().numChiplets(),
                         "bad chiplet id ", seg.chiplet);
            SCAR_REQUIRE(occupancy[seg.chiplet] == 0,
                         "chiplet ", seg.chiplet,
                         " hosts more than one segment in this window");
            occupancy[seg.chiplet] = 1;
            prevLast = seg.range.last;
        }
    }
}

void
WindowEvaluator::validateSolo(const WindowPlacement& placement) const
{
    // Same contract as validate(), restricted to one model. The
    // occupancy scratch vector (O(numChiplets) touched memory per
    // evaluation) is replaced by a pairwise check over the model's own
    // segments — with a single model those are the only chiplets that
    // could collide, and segment counts are small (<= path length).
    const Scenario& sc = db_.scenario();
    const ModelPlacement& mp = placement.models.front();
    SCAR_REQUIRE(mp.modelIdx >= 0 && mp.modelIdx < sc.numModels(),
                 "bad model index ", mp.modelIdx);
    const Model& model = sc.models[mp.modelIdx];
    SCAR_REQUIRE(!mp.segments.empty(), "model ", model.name,
                 " placed with no segments");
    int prevLast = mp.segments.front().range.first - 1;
    for (std::size_t k = 0; k < mp.segments.size(); ++k) {
        const PlacedSegment& seg = mp.segments[k];
        SCAR_REQUIRE(!seg.range.empty(), "empty segment for model ",
                     model.name);
        SCAR_REQUIRE(seg.range.first == prevLast + 1,
                     "segments must be contiguous for model ",
                     model.name, " (got first=", seg.range.first,
                     " after last=", prevLast, ")");
        SCAR_REQUIRE(seg.range.last < model.numLayers(),
                     "segment exceeds model ", model.name);
        SCAR_REQUIRE(seg.chiplet >= 0 &&
                         seg.chiplet < db_.mcm().numChiplets(),
                     "bad chiplet id ", seg.chiplet);
        for (std::size_t j = 0; j < k; ++j)
            SCAR_REQUIRE(mp.segments[j].chiplet != seg.chiplet,
                         "chiplet ", seg.chiplet,
                         " hosts more than one segment in this window");
        prevLast = seg.range.last;
    }
}

int
WindowEvaluator::entryOf(const WindowPlacement& placement,
                         int modelIdx) const
{
    if (modelIdx < static_cast<int>(placement.entryChiplet.size()))
        return placement.entryChiplet[modelIdx];
    return -1;
}

double
WindowEvaluator::segmentWeights(int modelIdx,
                                const PlacedSegment& seg) const
{
    // Segment reductions are O(1) range queries against the CostDb
    // tables (see cost_db.h: values are bit-identical to the
    // per-layer loops they replaced).
    return db_.segmentWeightBytes(modelIdx, seg.range.first,
                                  seg.range.last);
}

bool
WindowEvaluator::segmentResident(int modelIdx, const PlacedSegment& seg,
                                 int bPrime) const
{
    const double weights = segmentWeights(modelIdx, seg);
    const double maxAct =
        db_.segmentMaxActBytes(modelIdx, seg.range.first,
                               seg.range.last) *
        bPrime;
    const double l2 = db_.mcm().chiplet(seg.chiplet).spec.l2Bytes;
    return weights + maxAct <= l2;
}

template <typename Factor>
ModelWindowCost
WindowEvaluator::evalModel(const WindowPlacement& placement,
                           const ModelPlacement& mp, int bIdx,
                           Factor&& factor) const
{
    const Scenario& sc = db_.scenario();
    const Mcm& mcm = db_.mcm();
    const Model& model = sc.models[mp.modelIdx];
    const int bPrime = db_.miniBatchCandidates(mp.modelIdx)[bIdx];
    const int b = model.batch;
    const int steps =
        static_cast<int>(std::ceil(static_cast<double>(b) / bPrime));

    ModelWindowCost modelCost;
    modelCost.segments.reserve(mp.segments.size());
    double maxSteady = 0.0;
    for (std::size_t k = 0; k < mp.segments.size(); ++k) {
        const PlacedSegment& seg = mp.segments[k];
        const int c = seg.chiplet;
        const Dataflow df = mcm.chiplet(c).spec.dataflow;
        const Layer& first = model.layers[seg.range.first];
        const Layer& last = model.layers[seg.range.last];

        const double compute = db_.segmentCycles(
            mp.modelIdx, bIdx, df, seg.range.first, seg.range.last);
        const double intraEnergy = db_.segmentEnergyNj(
            mp.modelIdx, bIdx, df, seg.range.first, seg.range.last);

        // DRAM-side transfers route between the chiplet and its
        // nearest memory interface; the phased contention factor
        // charges them against their phase's link loads (the static
        // factor returns 1 for non-activation phases, so these sites
        // multiply by 1 — bit-identical to the pre-phase code).
        const int mem = mcm.nearestMemInterface(c);

        // Input side: DRAM or entry-chiplet NoP for the head
        // segment, inter-segment NoP otherwise.
        double ipLat = 0.0;
        double ipEnergy = 0.0;
        if (k == 0) {
            const double bytes = first.inputBytes() * bPrime;
            const int entry = entryOf(placement, mp.modelIdx);
            if (entry >= 0) {
                ipLat = comm_.nopLatencyCycles(
                    bytes * factor(entry, c, CommPhase::Activation),
                    entry, c);
                ipEnergy = comm_.nopEnergyNj(bytes, entry, c);
            } else {
                ipLat = comm_.dramLatencyCycles(
                    bytes * factor(mem, c, CommPhase::Spill), c);
                ipEnergy = comm_.dramEnergyNj(bytes, c);
            }
        } else {
            const int prevC = mp.segments[k - 1].chiplet;
            const Layer& prevLast =
                model.layers[mp.segments[k - 1].range.last];
            const double bytes = prevLast.outputBytes() * bPrime;
            ipLat = comm_.nopLatencyCycles(
                bytes * factor(prevC, c, CommPhase::Activation),
                prevC, c);
            ipEnergy = comm_.nopEnergyNj(bytes, prevC, c);
        }

        // Output side: DRAM writeback only when the model's final
        // layer completes here.
        double opLat = 0.0;
        double opEnergy = 0.0;
        if (k + 1 == mp.segments.size() &&
            seg.range.last == model.numLayers() - 1) {
            const double bytes = last.outputBytes() * bPrime;
            opLat = comm_.dramLatencyCycles(
                bytes * factor(c, mem, CommPhase::Spill), c);
            opEnergy = comm_.dramEnergyNj(bytes, c);
        }

        const bool resident = segmentResident(mp.modelIdx, seg,
                                              bPrime);
        const double wBytes = segmentWeights(mp.modelIdx, seg);
        const double wLat = comm_.dramLatencyCycles(
            wBytes * factor(mem, c, CommPhase::WeightLoad), c);
        const double wEnergy = comm_.dramEnergyNj(wBytes, c);

        SegmentCost segCost;
        segCost.weightsResident = resident;
        segCost.steadySampleCycles =
            ipLat + compute + opLat + (resident ? 0.0 : wLat);
        segCost.firstSampleCycles =
            segCost.steadySampleCycles + (resident ? wLat : 0.0);
        segCost.energyNj = steps * (intraEnergy + ipEnergy +
                                    opEnergy) +
                           wEnergy * (resident ? 1.0 : steps);

        maxSteady = std::max(maxSteady, segCost.steadySampleCycles);
        modelCost.energyNj += segCost.energyNj;
        modelCost.segments.push_back(segCost);
    }

    // The pipelining formula of Section III-E:
    // sum_k Lat(sg_k|b') + (b/b' - 1) * max_k Lat(sg_k|b').
    for (const SegmentCost& segCost : modelCost.segments)
        modelCost.latencyCycles += segCost.firstSampleCycles;
    modelCost.latencyCycles += (steps - 1) * maxSteady;
    return modelCost;
}

namespace
{
struct NoContention
{
    int operator()(int, int, CommPhase) const { return 1; }
};
} // namespace

WindowCost
WindowEvaluator::evaluate(const WindowPlacement& placement) const
{
    // Profiled solves count every evaluator invocation (solo and
    // full); unprofiled runs pay one predicted branch.
    obs::SearchCounters::bump(db_.counters(),
                              &obs::SearchCounters::windowEvals);
    validate(placement);
    const Scenario& sc = db_.scenario();
    const Mcm& mcm = db_.mcm();
    const Topology& topo = mcm.topology();
    const int numNodes = topo.numNodes();

    const NoContention noContention;

    // ---- Step 1: choose the mini-batch b' per model. Section III-E
    // leaves b' <= b free; candidates are capacity folding vs
    // streaming, compared contention-free by latency. The slowest
    // model's contention-free latency doubles as the phased model's
    // window time base (the denominator of each link's utilization).
    std::vector<int> chosenBIdx(placement.models.size(), 0);
    double baselineCycles = 0.0;
    for (std::size_t mi = 0; mi < placement.models.size(); ++mi) {
        const ModelPlacement& mp = placement.models[mi];
        const int numCandidates = static_cast<int>(
            db_.miniBatchCandidates(mp.modelIdx).size());
        double bestLat = std::numeric_limits<double>::infinity();
        for (int bIdx = 0; bIdx < numCandidates; ++bIdx) {
            const double lat =
                evalModel(placement, mp, bIdx, noContention)
                    .latencyCycles;
            if (lat < bestLat) {
                bestLat = lat;
                chosenBIdx[mi] = bIdx;
            }
        }
        baselineCycles = std::max(baselineCycles, bestLat);
    }

    // ---- Step 2: enumerate flows for the contention model. --------
    std::vector<Flow> flows;
    double totalDramBytes = 0.0;
    for (std::size_t mi = 0; mi < placement.models.size(); ++mi) {
        const ModelPlacement& mp = placement.models[mi];
        const Model& model = sc.models[mp.modelIdx];
        const int bPrime =
            db_.miniBatchCandidates(mp.modelIdx)[chosenBIdx[mi]];
        const int b = model.batch;
        const int steps = static_cast<int>(
            std::ceil(static_cast<double>(b) / bPrime));
        for (std::size_t k = 0; k < mp.segments.size(); ++k) {
            const PlacedSegment& seg = mp.segments[k];
            const int c = seg.chiplet;
            const int mem = mcm.nearestMemInterface(c);
            const Layer& first = model.layers[seg.range.first];
            const Layer& last = model.layers[seg.range.last];

            const bool resident = segmentResident(mp.modelIdx, seg,
                                                  bPrime);
            // Non-resident weights re-stream once per mini-batch step.
            const double wBytes = segmentWeights(mp.modelIdx, seg) *
                                  (resident ? 1.0 : steps);
            flows.push_back(
                {mem, c, wBytes, true, CommPhase::WeightLoad});
            totalDramBytes += wBytes;

            if (k == 0) {
                const double inBytes = first.inputBytes() * b;
                const int entry = entryOf(placement, mp.modelIdx);
                if (entry >= 0) {
                    flows.push_back({entry, c, inBytes, false,
                                     CommPhase::Activation});
                } else {
                    flows.push_back(
                        {mem, c, inBytes, true, CommPhase::Spill});
                    totalDramBytes += inBytes;
                }
            } else {
                const PlacedSegment& prev = mp.segments[k - 1];
                const Layer& prevLast = model.layers[prev.range.last];
                flows.push_back({prev.chiplet, c,
                                 prevLast.outputBytes() * b, false,
                                 CommPhase::Activation});
            }
            // Only the model's final layer writes results off-chip; a
            // model continuing into a later window hands its data to
            // that window's head segment (consumer side, NoP-priced).
            const bool modelEnds =
                seg.range.last == model.numLayers() - 1;
            if (k + 1 == mp.segments.size() && modelEnds) {
                const double outBytes = last.outputBytes() * b;
                flows.push_back(
                    {c, mem, outBytes, true, CommPhase::Spill});
                totalDramBytes += outBytes;
            }
        }
    }

    // Per-link flow counts over the precomputed routes, in a flat
    // vector indexed by dense link id. Evaluation must never grow the
    // load table: an earlier std::map version inserted zero entries
    // on every contention-factor read (a silent allocation per query);
    // the fixed-size vector makes that structurally impossible
    // (regression-tested in tests/test_cost.cc).
    std::vector<int> linkLoad(options_.contention ? topo.numLinks() : 0,
                              0);
    if (options_.contention) {
        for (const Flow& f : flows) {
            if (f.src == f.dst || f.bytes <= 0.0)
                continue;
            for (const int id : topo.routeLinkIds(f.src, f.dst))
                ++linkLoad[id];
        }
    }
    // The static per-flow contention factor depends only on
    // (src, dst) — it applies solely to activation flows and returns
    // 1 for the DRAM-side phases — so it is computed once per pair
    // and memoized in a flat table instead of being re-derived for
    // every segment that prices a transfer. (Empty when contention is
    // off — the solo evaluations of the beam search never touch it.)
    std::vector<int> factorMemo(
        options_.contention
            ? static_cast<std::size_t>(numNodes) * numNodes
            : 0,
        0);
    auto contentionFactor = [&](int src, int dst, CommPhase phase) {
        if (!options_.contention || src == dst ||
            phase != CommPhase::Activation)
            return 1;
        int& memo =
            factorMemo[static_cast<std::size_t>(src) * numNodes + dst];
        if (memo == 0) {
            int sharers = 1;
            for (const int id : topo.routeLinkIds(src, dst))
                sharers = std::max(sharers, linkLoad[id]);
            memo = sharers;
        }
        return memo;
    };

    // Phased fidelity: per-phase per-link byte loads (medium-
    // aggregated on a broadcast plane) and a (src, dst, phase)-keyed
    // memo of M/D/1 bottleneck factors. Built only when phased, so
    // the static hot path allocates nothing new.
    const bool phased = options_.contention &&
                        options_.fidelity == CommFidelity::Phased;
    std::optional<PhasedLinkTable> phaseTable;
    std::vector<double> phasedMemo;
    if (phased) {
        phaseTable.emplace(topo);
        for (const Flow& f : flows) {
            if (f.src == f.dst || f.bytes <= 0.0)
                continue;
            phaseTable->addFlow(f.phase,
                                topo.routeLinkIds(f.src, f.dst),
                                f.bytes);
        }
        phasedMemo.assign(static_cast<std::size_t>(numNodes) *
                              numNodes * kNumCommPhases,
                          0.0);
    }
    auto phasedFactor = [&](int src, int dst, CommPhase phase) {
        if (src == dst)
            return 1.0;
        double& memo =
            phasedMemo[(static_cast<std::size_t>(src) * numNodes +
                        dst) *
                           kNumCommPhases +
                       static_cast<int>(phase)];
        if (memo == 0.0) {
            double worst = 1.0;
            for (const int id : topo.routeLinkIds(src, dst))
                worst = std::max(
                    worst, comm_.queueingFactor(
                               phaseTable->load(phase, id),
                               baselineCycles, id));
            memo = worst;
        }
        return memo;
    };

    // ---- Step 3: final costs with contention. ----------------------
    WindowCost window;
    window.dramBytes = totalDramBytes;
    for (const int load : linkLoad)
        window.maxLinkSharers = std::max(window.maxLinkSharers, load);

    for (std::size_t mi = 0; mi < placement.models.size(); ++mi) {
        ModelWindowCost modelCost =
            !options_.contention
                ? evalModel(placement, placement.models[mi],
                            chosenBIdx[mi], noContention)
                : (phased ? evalModel(placement, placement.models[mi],
                                      chosenBIdx[mi], phasedFactor)
                          : evalModel(placement, placement.models[mi],
                                      chosenBIdx[mi],
                                      contentionFactor));
        window.latencyCycles =
            std::max(window.latencyCycles, modelCost.latencyCycles);
        window.energyNj += modelCost.energyNj;
        window.perModel.push_back(std::move(modelCost));
    }
    for (const double f : phasedMemo)
        window.maxQueueFactor = std::max(window.maxQueueFactor, f);

    if (options_.dramRoofline) {
        window.dramBoundCycles =
            totalDramBytes / comm_.offchipBytesPerCycle();
        window.latencyCycles =
            std::max(window.latencyCycles, window.dramBoundCycles);
    }
    return window;
}

SoloWindowCost
WindowEvaluator::evaluateSolo(const WindowPlacement& placement) const
{
    // Counts as one evaluator invocation, exactly like the evaluate()
    // call it replaces — profiled windowEvals totals are unchanged.
    obs::SearchCounters::bump(db_.counters(),
                              &obs::SearchCounters::windowEvals);
    SCAR_REQUIRE(placement.models.size() == 1,
                 "evaluateSolo requires exactly one placed model, got ",
                 placement.models.size());
    SCAR_REQUIRE(!options_.contention && !options_.dramRoofline,
                 "evaluateSolo requires contention and dramRoofline "
                 "disabled");
    validateSolo(placement);

    // evaluate() prices every mini-batch candidate contention-free in
    // its selection step, then re-prices the winner — with contention
    // and the roofline off, that final pass reproduces the selection
    // pass bit-for-bit (evalModel is pure). So the winner's cost from
    // the selection loop IS the answer; the re-evaluation, the flow
    // enumeration, and the contention tables are skipped entirely.
    // Selection keeps the FIRST strict-< winner, matching evaluate().
    const ModelPlacement& mp = placement.models.front();
    const int numCandidates = static_cast<int>(
        db_.miniBatchCandidates(mp.modelIdx).size());
    const NoContention noContention;
    SoloWindowCost best;
    double bestLat = std::numeric_limits<double>::infinity();
    for (int bIdx = 0; bIdx < numCandidates; ++bIdx) {
        const ModelWindowCost cost =
            evalModel(placement, mp, bIdx, noContention);
        if (cost.latencyCycles < bestLat) {
            bestLat = cost.latencyCycles;
            // evaluate() folds the winner into WindowCost as
            // max(0, lat) and 0 + energy — identities for the
            // non-negative costs produced here.
            best.latencyCycles = cost.latencyCycles;
            best.energyNj = cost.energyNj;
        }
    }
    return best;
}

} // namespace scar
