/**
 * @file
 * MCM communication cost model (paper Section III-E, Lat_com):
 *
 *   same chiplet:  0
 *   same package:  Sz/BW_nop + n_hops * Lat_hop + delta
 *   off-chip:      Sz/BW_offchip + n_hops * Lat_hop + Lat_mem + delta
 *
 * Off-chip transfers route over the NoP between the chiplet and its
 * nearest memory-interface chiplet. The contention term delta is
 * applied by the window evaluator (it needs window-global knowledge);
 * this class prices individual transfers without contention.
 */

#ifndef SCAR_COST_COMM_MODEL_H
#define SCAR_COST_COMM_MODEL_H

#include "arch/mcm.h"

namespace scar
{

/** Prices individual data movements on a given MCM. */
class CommModel
{
  public:
    explicit CommModel(const Mcm& mcm);

    /** Latency (cycles) of a chiplet-to-chiplet NoP transfer. */
    double nopLatencyCycles(double bytes, int src, int dst) const;

    /** Energy (nJ) of a chiplet-to-chiplet NoP transfer. */
    double nopEnergyNj(double bytes, int src, int dst) const;

    /** Latency (cycles) of a DRAM read/write for the given chiplet. */
    double dramLatencyCycles(double bytes, int chiplet) const;

    /** Energy (nJ) of a DRAM read/write incl. NoP traversal. */
    double dramEnergyNj(double bytes, int chiplet) const;

    /** Per-hop NoP latency in cycles. */
    double hopLatencyCycles() const { return hopCycles_; }

    /** NoP bandwidth in bytes per cycle (per link). */
    double nopBytesPerCycle() const { return nopBpc_; }

    /** Off-chip bandwidth in bytes per cycle (package total). */
    double offchipBytesPerCycle() const { return offchipBpc_; }

    /** The MCM this model prices. */
    const Mcm& mcm() const { return mcm_; }

  private:
    const Mcm& mcm_;
    double hopCycles_;
    double dramCycles_;
    double nopBpc_;
    double offchipBpc_;
};

} // namespace scar

#endif // SCAR_COST_COMM_MODEL_H
