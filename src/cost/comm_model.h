/**
 * @file
 * MCM communication cost model (paper Section III-E, Lat_com):
 *
 *   same chiplet:  0
 *   same package:  Sz/BW_nop + n_hops * Lat_hop + delta
 *   off-chip:      Sz/BW_offchip + n_hops * Lat_hop + Lat_mem + delta
 *
 * Off-chip transfers route over the NoP between the chiplet and its
 * nearest memory-interface chiplet. This class prices individual
 * transfers without contention; the contention term delta needs
 * window-global knowledge and lives in the window evaluator, which
 * supports two fidelities (EvaluatorOptions::fidelity):
 *
 *  - CommFidelity::Static (default, the paper's model): delta
 *    inflates each NoP transfer by the maximum number of flows
 *    sharing any link of its route. The per-(src, dst) factor is
 *    memoized in a flat table over the dense link ids
 *    (arch/topology.h) so each query is O(route length) once and O(1)
 *    after.
 *  - CommFidelity::Phased: the window's transfers are split into
 *    phases (CommPhase: weight-load, activation-exchange, off-chip
 *    spill), per-phase per-link byte loads accumulate into a
 *    PhasedLinkTable, and each flow is inflated by an M/D/1-style
 *    queueing factor of the bottleneck link's utilization
 *    (queueingFactor()), queried in O(1) per (src, dst, phase).
 *
 * Topology awareness: on wired topologies (mesh, torus, express
 * links) every link runs at BW_nop and the formulas above apply
 * verbatim. When the topology carries a wireless broadcast plane
 * (Topology::broadcastMesh), plane links run at the shared-medium
 * bandwidth and energy, per-pair bottleneck tables are precomputed at
 * construction, and one-to-many flows whose source and destinations
 * are all plane members are priced in a single shared-medium slot
 * (broadcastLatencyCycles()).
 */

#ifndef SCAR_COST_COMM_MODEL_H
#define SCAR_COST_COMM_MODEL_H

#include <vector>

#include "arch/mcm.h"

namespace scar
{

/** Contention-model fidelity of the window evaluator. */
enum class CommFidelity
{
    /** Paper Section III-E: max-sharers flow count per route. */
    Static,
    /** Time-phased loads + M/D/1 utilization curve per link. */
    Phased,
};

/**
 * Traffic phase of a window transfer. MCM AI traffic is bursty and
 * phase-structured (Musavi et al.): weight streaming, activation
 * hand-off, and off-chip spills peak at different times, so the
 * phased contention model only charges flows against the loads of
 * their own phase.
 */
enum class CommPhase
{
    WeightLoad = 0, ///< DRAM -> chiplet weight streaming
    Activation = 1, ///< chiplet -> chiplet activation hand-off
    Spill = 2,      ///< DRAM input loads and result writebacks
};

/** Number of CommPhase values (table stride). */
constexpr int kNumCommPhases = 3;

/** Display name of a phase ("weight", "act", "spill"). */
const char* commPhaseName(CommPhase phase);

/**
 * Per-phase per-link byte loads over the dense link ids, accumulated
 * flow by flow in O(route length) and queried in O(1). Links tagged
 * with a shared medium (wireless plane links) aggregate: load() on
 * any plane link returns the whole medium's bytes for that phase,
 * because a shared medium serializes all its transmissions.
 *
 * Accumulation order is the flow order handed to addFlow — sums are
 * plain running additions, so a naive per-transfer reference that
 * walks flows in the same order reproduces every entry bit-for-bit
 * (the differential contract tested in tests/test_comm_model.cc).
 */
class PhasedLinkTable
{
  public:
    explicit PhasedLinkTable(const Topology& topo);

    /** Adds one flow's bytes to every link of its route, one phase. */
    void addFlow(CommPhase phase, const std::vector<int>& linkIds,
                 double bytes);

    /** Phase load of a link (medium-aggregated for plane links). */
    double load(CommPhase phase, int linkId) const;

    /** Resets all loads to zero. */
    void clear();

  private:
    const Topology* topo_;
    std::vector<double> linkLoads_;   ///< phase * numLinks + link
    std::vector<double> mediumLoads_; ///< phase * numMedia + medium
};

/** Prices individual data movements on a given MCM. */
class CommModel
{
  public:
    explicit CommModel(const Mcm& mcm);

    /** Latency (cycles) of a chiplet-to-chiplet NoP transfer. */
    double nopLatencyCycles(double bytes, int src, int dst) const;

    /** Energy (nJ) of a chiplet-to-chiplet NoP transfer. */
    double nopEnergyNj(double bytes, int src, int dst) const;

    /** Latency (cycles) of a DRAM read/write for the given chiplet. */
    double dramLatencyCycles(double bytes, int chiplet) const;

    /** Energy (nJ) of a DRAM read/write incl. NoP traversal. */
    double dramEnergyNj(double bytes, int chiplet) const;

    /**
     * Latency (cycles) of a one-to-many transfer. When the topology's
     * broadcast plane covers the source and every destination, the
     * whole fan-out costs a single shared-medium slot (one
     * transmission reaches all members); otherwise the destinations
     * are served as serialized unicasts, each priced once.
     */
    double broadcastLatencyCycles(double bytes, int src,
                                  const std::vector<int>& dsts) const;

    /** Energy (nJ) of a one-to-many transfer (see latency overload). */
    double broadcastEnergyNj(double bytes, int src,
                             const std::vector<int>& dsts) const;

    /**
     * M/D/1-style congestion factor (>= 1) for a link carrying
     * `loadBytes` of same-phase traffic within a window of
     * `windowCycles` contention-free cycles: utilization
     * rho = min(load / (link bandwidth * window), 0.95) and
     * factor = 1 + rho / (2 (1 - rho)). Monotone in loadBytes,
     * finite (<= 10.5), and exactly 1 for an unloaded link.
     */
    double queueingFactor(double loadBytes, double windowCycles,
                          int linkId) const;

    /** Bandwidth (bytes/cycle) of one dense link (plane-aware). */
    double linkBytesPerCycle(int linkId) const;

    /** Per-hop NoP latency in cycles. */
    double hopLatencyCycles() const { return hopCycles_; }

    /** NoP bandwidth in bytes per cycle (per wired link). */
    double nopBytesPerCycle() const { return nopBpc_; }

    /** Off-chip bandwidth in bytes per cycle (package total). */
    double offchipBytesPerCycle() const { return offchipBpc_; }

    /** Shared-medium bandwidth in bytes per cycle (0 without plane). */
    double broadcastBytesPerCycle() const { return broadcastBpc_; }

    /** The MCM this model prices. */
    const Mcm& mcm() const { return mcm_; }

  private:
    /** True when the plane covers src and every (non-src) dst. */
    bool planeCovers(int src, const std::vector<int>& dsts) const;

    const Mcm& mcm_;
    double hopCycles_;
    double dramCycles_;
    double nopBpc_;
    double offchipBpc_;
    double broadcastBpc_ = 0.0;

    // Plane-aware per-pair route tables, built only when the topology
    // has a broadcast plane (empty otherwise — wired topologies price
    // through the uniform-bandwidth formulas above, bit-identical to
    // the pre-plane code by construction).
    std::vector<double> pairBpc_;          ///< bottleneck bytes/cycle
    std::vector<double> pairEnergyPjPerBit_; ///< summed over route links
};

} // namespace scar

#endif // SCAR_COST_COMM_MODEL_H
