#!/usr/bin/env python3
"""Perf-smoke gate: fail CI when search throughput regresses.

Compares a fresh Google-Benchmark JSON run against the committed
baseline under bench_results/ and fails when any tracked benchmark is
more than --tolerance slower (default 20%).

Raw ns/op is meaningless across machines (the committed baseline comes
from the developer container, CI runners differ in clock and core
count), so the gate normalizes both runs by a calibration benchmark —
one whose code this repo's hot-path work does not touch (default:
BM_MaestroLiteGemm/0, the analytical layer model). The check is then

    current[b] / current[cal]  <=  (1 + tol) * baseline[b] / baseline[cal]

i.e. "did benchmark b get slower *relative to the same machine's
untouched compute core*". That cancels machine speed while still
catching real hot-path regressions. The calibration bench itself is
implicitly trusted; a regression there shifts every ratio and shows up
as widespread failures.

Usage:
  check_bench_regression.py --baseline bench_results/micro_sched.json \
      --current build/bench_results/micro_sched.json \
      [--benchmarks BM_WindowSearch,...] [--tolerance 0.2] \
      [--calibrate BM_MaestroLiteGemm/0 | --no-calibrate]

With --benchmarks unset, every benchmark present in both files (minus
the calibration one) is checked.
"""

import argparse
import json
import sys


def load_times(path):
    """name -> real_time in ns for every benchmark in a GB JSON file.

    When a run used --benchmark_repetitions, each repetition appears
    as its own entry under the same name; the minimum is kept —
    noise on a shared runner only ever inflates a measurement, so the
    fastest repetition is the most faithful one.
    """
    with open(path) as f:
        data = json.load(f)
    times = {}
    for bench in data.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        unit = bench.get("time_unit", "ns")
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[unit]
        ns = bench["real_time"] * scale
        name = bench["name"]
        times[name] = min(times.get(name, ns), ns)
    return times


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="committed baseline JSON")
    parser.add_argument("--current", required=True,
                        help="freshly measured JSON")
    parser.add_argument("--benchmarks", default="",
                        help="comma-separated names to gate "
                             "(default: all common benchmarks)")
    parser.add_argument("--tolerance", type=float, default=0.2,
                        help="allowed slowdown fraction (default 0.2)")
    parser.add_argument("--calibrate", default="BM_MaestroLiteGemm/0",
                        help="machine-speed normalization benchmark")
    parser.add_argument("--no-calibrate", action="store_true",
                        help="compare raw times (same-machine runs only)")
    args = parser.parse_args()

    baseline = load_times(args.baseline)
    current = load_times(args.current)

    cal = 1.0
    if not args.no_calibrate:
        if args.calibrate not in baseline or args.calibrate not in current:
            print(f"FAIL: calibration benchmark {args.calibrate!r} "
                  f"missing from baseline or current run")
            return 1
        cal = current[args.calibrate] / baseline[args.calibrate]
        print(f"calibration ({args.calibrate}): this machine runs "
              f"{cal:.2f}x the baseline machine's time")

    if args.benchmarks:
        names = [n for n in args.benchmarks.split(",") if n]
        missing = [n for n in names if n not in baseline or n not in current]
        if missing:
            print(f"FAIL: benchmarks missing from one side: {missing}")
            return 1
    else:
        names = sorted(set(baseline) & set(current) - {args.calibrate})
        if not names:
            print("FAIL: no common benchmarks between baseline and current")
            return 1

    failures = []
    for name in names:
        allowed = baseline[name] * cal * (1.0 + args.tolerance)
        ratio = current[name] / (baseline[name] * cal)
        verdict = "OK" if current[name] <= allowed else "REGRESSED"
        print(f"{verdict:>9}  {name}: {current[name]:,.0f} ns vs "
              f"normalized baseline {baseline[name] * cal:,.0f} ns "
              f"({ratio:.2f}x)")
        if current[name] > allowed:
            failures.append(name)

    if failures:
        print(f"\nFAIL: {len(failures)} benchmark(s) regressed more "
              f"than {args.tolerance:.0%}: {', '.join(failures)}")
        return 1
    print(f"\nOK: no benchmark regressed more than {args.tolerance:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
