#!/usr/bin/env python3
"""Fail on dead relative links in the repository's markdown files.

Scans every tracked *.md file (skipping build trees and VCS
internals), extracts inline markdown links and images, and verifies
that each relative target resolves to an existing file or directory.
External links (http/https/mailto) and pure in-page anchors are left
alone — this is a docs-tree integrity check, not a crawler — so the
CI docs job stays fast and network-free.

Usage: scripts/check_markdown_links.py [repo_root]
Exit code 0 when every relative link resolves, 1 otherwise.
"""

import os
import re
import sys

SKIP_DIRS = {".git", "build", "bench_results", ".ccache", ".claude"}

# Inline links/images: [text](target) / ![alt](target). Targets with
# spaces or nested parens are not used in this repo's docs.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
FENCE_RE = re.compile(r"^(```|~~~)")


def markdown_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(
            d for d in dirnames if d not in SKIP_DIRS)
        for name in sorted(filenames):
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def links_in(path):
    """Yields (lineno, target) for inline links outside code fences."""
    in_fence = False
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            if FENCE_RE.match(line.strip()):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for match in LINK_RE.finditer(line):
                yield lineno, match.group(1)


def main():
    root = os.path.abspath(
        sys.argv[1] if len(sys.argv) > 1 else
        os.path.join(os.path.dirname(__file__), os.pardir))
    dead = []
    checked = 0
    for md in markdown_files(root):
        base = os.path.dirname(md)
        for lineno, target in links_in(md):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            if target.startswith("#"):  # in-page anchor
                continue
            path = target.split("#", 1)[0]
            checked += 1
            resolved = os.path.normpath(os.path.join(base, path))
            if not os.path.exists(resolved):
                dead.append((os.path.relpath(md, root), lineno,
                             target))
    if dead:
        print("Dead relative links:")
        for md, lineno, target in dead:
            print(f"  {md}:{lineno}: {target}")
        return 1
    print(f"OK: {checked} relative links resolve.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
