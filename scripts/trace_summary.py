#!/usr/bin/env python3
"""Summarize (and sanity-check) a SCAR flight-recorder trace.

Reads the Chrome trace-event JSON written by obs::FlightRecorder
(trace.json) and prints a compact text summary: request lifecycle
latencies reconstructed from the async b/e spans, per-track span time
by category, instant counts, and the counter tracks present.

With --check the script validates structural invariants instead of
just summarizing, exiting nonzero when any fails:

  - the file parses and has a non-empty "traceEvents" array
  - every async span is balanced: one 'e' per 'b', keyed by (cat, id),
    with no 'e' before its 'b' and none left open
  - at least one request lifecycle span exists (cat = "request")
  - at least one replay-window span exists (ph = X, cat = "replay")

--expect-preemption additionally requires at least one "preempt"
instant (used by CI when the traced example runs with preemption on).

Usage:
  trace_summary.py obs/trace.json
  trace_summary.py obs/trace.json --check [--expect-preemption]
"""

import argparse
import json
import sys
from collections import Counter, defaultdict


def percentile(sorted_vals, q):
    """Nearest-rank percentile of an ascending list (empty -> 0)."""
    if not sorted_vals:
        return 0.0
    idx = min(len(sorted_vals) - 1, int(q * len(sorted_vals)))
    return sorted_vals[idx]


def load_events(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ValueError("no traceEvents array in %s" % path)
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        raise ValueError("traceEvents is empty in %s" % path)
    return events


def check_async_balance(events):
    """Returns a list of error strings for unbalanced async spans."""
    errors = []
    open_spans = defaultdict(int)  # (cat, id) -> open count
    for ev in events:
        ph = ev.get("ph")
        if ph not in ("b", "n", "e"):
            continue
        key = (ev.get("cat", ""), ev.get("id"))
        if ph == "b":
            open_spans[key] += 1
        elif ph == "e":
            open_spans[key] -= 1
            if open_spans[key] < 0:
                errors.append("async end before begin for %r" % (key,))
                open_spans[key] = 0
    for key, count in sorted(open_spans.items(), key=str):
        if count > 0:
            errors.append("async span left open for %r" % (key,))
    return errors


def summarize(events):
    thread_names = {}
    for ev in events:
        if ev.get("ph") == "M" and ev.get("name") == "thread_name":
            tid = ev.get("tid")
            thread_names[tid] = ev.get("args", {}).get("name", str(tid))

    # Request lifecycle: async b..e per (cat="request", id).
    begins = {}
    latencies = []
    for ev in events:
        if ev.get("cat") != "request":
            continue
        key = ev.get("id")
        if ev.get("ph") == "b":
            begins[key] = ev.get("ts", 0.0)
        elif ev.get("ph") == "e" and key in begins:
            latencies.append((ev.get("ts", 0.0) - begins.pop(key)) / 1e6)
    latencies.sort()

    span_time = defaultdict(float)  # (tid, cat) -> total dur sec
    span_count = Counter()
    instants = Counter()
    counters = set()
    for ev in events:
        ph = ev.get("ph")
        if ph == "X":
            key = (ev.get("tid", 0), ev.get("cat", ""))
            span_time[key] += ev.get("dur", 0.0) / 1e6
            span_count[key] += 1
        elif ph in ("i", "n"):
            instants[ev.get("name", "")] += 1
        elif ph == "C":
            counters.add(ev.get("name", ""))

    lines = ["%d trace events" % len(events)]
    if latencies:
        lines.append(
            "requests: %d completed, latency mean %.4f s, "
            "p50 %.4f s, p95 %.4f s, p99 %.4f s, max %.4f s"
            % (
                len(latencies),
                sum(latencies) / len(latencies),
                percentile(latencies, 0.50),
                percentile(latencies, 0.95),
                percentile(latencies, 0.99),
                latencies[-1],
            )
        )
    if begins:
        lines.append("requests still in flight at trace end: %d" % len(begins))
    for (tid, cat), total in sorted(span_time.items()):
        lines.append(
            "track %-24s %-16s %6d spans, %10.4f s"
            % (thread_names.get(tid, str(tid)), cat, span_count[(tid, cat)], total)
        )
    for name, count in sorted(instants.items()):
        lines.append("instant %-24s x%d" % (name, count))
    if counters:
        lines.append("counter tracks: " + ", ".join(sorted(counters)))
    return "\n".join(lines)


def check(events, expect_preemption):
    errors = check_async_balance(events)
    if not any(ev.get("ph") == "b" and ev.get("cat") == "request" for ev in events):
        errors.append("no request lifecycle spans (ph=b, cat=request)")
    if not any(ev.get("ph") == "X" and ev.get("cat") == "replay" for ev in events):
        errors.append("no replay window spans (ph=X, cat=replay)")
    if expect_preemption and not any(
        ev.get("ph") == "i" and ev.get("name") == "preempt" for ev in events
    ):
        errors.append("--expect-preemption: no preempt instants found")
    return errors


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="path to Chrome trace-event JSON")
    parser.add_argument(
        "--check",
        action="store_true",
        help="validate structural invariants, exit nonzero on failure",
    )
    parser.add_argument(
        "--expect-preemption",
        action="store_true",
        help="with --check, also require preempt instants",
    )
    args = parser.parse_args()

    try:
        events = load_events(args.trace)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print("trace_summary: FAIL: %s" % exc, file=sys.stderr)
        return 1

    print(summarize(events))
    if args.check:
        errors = check(events, args.expect_preemption)
        if errors:
            for err in errors:
                print("trace_summary: FAIL: %s" % err, file=sys.stderr)
            return 1
        print("trace_summary: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
