/**
 * @file
 * Extension experiment (paper Conclusion / future work): heterogeneous
 * MCMs with a third dataflow class. Compares the two-class Het-Sides
 * against the three-class Het-Tri (NVDLA + Eyeriss-style
 * row-stationary + Shi-diannao columns) under the EDP search on the
 * mixed datacenter scenarios — the formulation's Eq. 1 and the
 * scheduler operate unchanged for any |DF|.
 */

#include <map>
#include <iostream>

#include "common/csv.h"
#include "common/table.h"
#include "bench_util.h"

using namespace scar;
using namespace scar::bench;

int
main()
{
    std::cout << "=== Extension: three-dataflow heterogeneous MCM "
                 "(EDP search) ===\n\n";

    std::vector<Strategy> strategies{
        Strategy{"Simba (NVD)", false,
                 [](int pes) {
                     return templates::simba3x3(Dataflow::NvdlaWS, pes);
                 }},
        Strategy{"Het-Sides (2 classes)", false,
                 [](int pes) { return templates::hetSides3x3(pes); }},
        Strategy{"Het-Tri (3 classes)", false,
                 [](int pes) { return templates::hetTriple3x3(pes); }},
    };

    CsvWriter csv(csvPath("ext_third_dataflow"),
                  {"scenario", "strategy", "latency_s", "energy_j",
                   "edp_js"});

    std::map<std::string, std::map<int, double>> edp;
    for (int idx : {2, 3, 4}) {
        const Scenario sc = suite::datacenterScenario(idx);
        std::cout << "--- " << suite::scenarioLabel(idx) << " ---\n";
        TextTable table({"Strategy", "Latency (s)", "Energy (J)",
                         "EDP (J*s)"});
        for (const Strategy& strategy : strategies) {
            const RunResult r = runStrategy(strategy, sc, OptTarget::Edp,
                                            templates::kDatacenterPes);
            edp[strategy.name][idx] = r.metrics.edp();
            table.addRow({strategy.name,
                          TextTable::num(r.metrics.latencySec, 3),
                          TextTable::num(r.metrics.energyJ, 3),
                          TextTable::num(r.metrics.edp(), 3)});
            csv.addRow({sc.name, strategy.name,
                        TextTable::num(r.metrics.latencySec, 6),
                        TextTable::num(r.metrics.energyJ, 6),
                        TextTable::num(r.metrics.edp(), 6)});
        }
        std::cout << table.render() << "\n";
    }

    // The three-class pattern trades NVDLA capacity for generalist
    // row-stationary chiplets; it should stay within a modest factor
    // of the best two-class pattern on mixed workloads.
    bool competitive = true;
    for (int idx : {2, 3, 4}) {
        if (edp["Het-Tri (3 classes)"][idx] >
            2.0 * edp["Het-Sides (2 classes)"][idx])
            competitive = false;
    }
    std::cout << "Shape check: three-class MCM schedules correctly and "
                 "stays within 2x of the best two-class pattern "
              << (competitive ? "[OK]" : "[MISS]") << "\n";
    return 0;
}
