/**
 * @file
 * Serving-load sweep: the online runtime under increasing traffic.
 *
 * Serves Poisson streams of the Table III Sc4 datacenter models on
 * Het-Sides 3x3 at several load multiples of a base traffic profile
 * and reports, per load point: achieved throughput, p50/p95/p99
 * latency, SLO violation rate, and schedule-cache effectiveness. The
 * sweep shows the saturation behavior the offline paper tables cannot:
 * latency percentiles and SLO misses explode past the package's
 * service ceiling while the schedule cache keeps the search cost flat.
 *
 * Every solve a cache miss triggers blocks that shard on Scar::run(),
 * so the wall-clock solve latency is the serving fleet's tail-latency
 * floor on a miss. The bench therefore measures it directly: a
 * cold-solve probe (the full Sc4 mix, the heaviest mix the sweep
 * solves) before the sweep, and a per-point wall_ms column showing
 * the search cost the schedule cache amortizes away.
 *
 * Raw series: bench_results/runtime_serving.csv.
 */

#include <algorithm>
#include <chrono>
#include <iostream>

#include "bench_util.h"
#include "common/csv.h"
#include "common/table.h"
#include "eval/reporter.h"
#include "runtime/serving_sim.h"

namespace
{

double
wallMsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

int
main()
{
    using namespace scar;
    using namespace scar::runtime;

    const Scenario sc4 = suite::datacenterScenario(4);
    const std::vector<double> baseRatesRps = {12.0, 36.0, 1.5, 48.0};
    const std::vector<double> slosSec = {2.5, 1.5, 2.0, 1.0};
    const std::vector<double> loads = {0.25, 0.5, 1.0, 1.5, 2.0};
    const int kRequests = bench::envInt("SCAR_BENCH_REQUESTS", 4000);

    // Cold-solve probe: the end-to-end latency of one schedule solve
    // (what a shard stalls on at every cache miss), median-of-3.
    double coldSolveMs = 0.0;
    {
        std::vector<double> runsMs;
        for (int i = 0; i < 3; ++i) {
            Scar scar(sc4, templates::hetSides3x3(), ScarOptions{});
            const auto start = std::chrono::steady_clock::now();
            const ScheduleResult result = scar.run();
            runsMs.push_back(wallMsSince(start));
            if (result.windows.empty())
                return 1;
        }
        std::sort(runsMs.begin(), runsMs.end());
        coldSolveMs = runsMs[1];
    }

    TextTable table({"Load", "Offered req/s", "Throughput", "p50 (s)",
                     "p95 (s)", "p99 (s)", "SLO miss %", "Searches",
                     "Cache hit %", "Wall ms"});
    CsvWriter csv(bench::csvPath("runtime_serving"),
                  {"load", "offered_rps", "throughput_rps", "p50_s",
                   "p95_s", "p99_s", "slo_miss_rate", "searches",
                   "cache_hit_rate", "wall_ms", "cold_solve_ms"});

    for (const double load : loads) {
        std::vector<ServedModel> catalog;
        double offeredRps = 0.0;
        for (std::size_t m = 0; m < sc4.models.size(); ++m) {
            ServedModel sm;
            sm.model = sc4.models[m];
            sm.rateRps = baseRatesRps[m] * load;
            sm.sloSec = slosSec[m];
            offeredRps += sm.rateRps;
            catalog.push_back(std::move(sm));
        }

        ServingOptions options;
        options.admission.maxQueueDelaySec = 0.1;
        ServingSimulator sim(catalog, templates::hetSides3x3(),
                             options);
        const auto start = std::chrono::steady_clock::now();
        const ServingReport report = sim.run(
            poissonTrace(catalog, kRequests, /*seed=*/7));
        const double wallMs = wallMsSince(start);

        table.addRow({TextTable::num(load, 2),
                      TextTable::num(offeredRps, 1),
                      TextTable::num(report.throughputRps, 1),
                      TextTable::num(report.p50LatencySec, 3),
                      TextTable::num(report.p95LatencySec, 3),
                      TextTable::num(report.p99LatencySec, 3),
                      TextTable::num(report.sloViolationRate * 100.0,
                                     2),
                      std::to_string(report.cache.misses),
                      TextTable::num(report.cache.hitRate() * 100.0,
                                     1),
                      TextTable::num(wallMs, 1)});
        csv.addRow({TextTable::num(load, 2),
                    TextTable::num(offeredRps, 3),
                    TextTable::num(report.throughputRps, 3),
                    TextTable::num(report.p50LatencySec, 6),
                    TextTable::num(report.p95LatencySec, 6),
                    TextTable::num(report.p99LatencySec, 6),
                    TextTable::num(report.sloViolationRate, 6),
                    std::to_string(report.cache.misses),
                    TextTable::num(report.cache.hitRate(), 4),
                    TextTable::num(wallMs, 2),
                    TextTable::num(coldSolveMs, 2)});
    }

    std::cout << "Serving-load sweep: Sc4 datacenter models on "
                 "Het-Sides 3x3 ("
              << kRequests << " requests per point)\n\n";
    std::cout << "Cold solve latency (full Sc4 mix, median of 3): "
              << TextTable::num(coldSolveMs, 1)
              << " ms — what a shard stalls on per cache miss\n\n";
    std::cout << table.render();
    std::cout << "\nCSV: " << bench::csvPath("runtime_serving") << "\n";
    return 0;
}
