/**
 * @file
 * Table V + Figure 10 — AR/VR (XRBench) scenarios 6-10 on the 3x3
 * templates with 256-PE chiplets, EDP search: relative latency and
 * relative EDP normalized by the standalone NVDLA configuration.
 *
 * Paper shape targets: Het-Sides ~17% mean EDP gain over standalone
 * NVDLA; Shi-based strategies lose on scenarios 6-8 but win on the
 * CNN-heavy Social scenario (Sc9 relative EDP < 0.5).
 */

#include <map>
#include <iostream>

#include "common/csv.h"
#include "common/table.h"
#include "bench_util.h"

using namespace scar;
using namespace scar::bench;

int
main()
{
    std::cout << "=== Table V / Figure 10: AR/VR scenarios, EDP search "
                 "===\n\n";

    CsvWriter csv(csvPath("table5_arvr"),
                  {"strategy", "scenario", "rel_latency", "rel_edp"});

    std::vector<Scenario> scenarios;
    for (int idx = 6; idx <= 10; ++idx)
        scenarios.push_back(suite::arvrScenario(idx));

    // Normalization baseline per scenario.
    std::vector<Metrics> base;
    for (const Scenario& sc : scenarios) {
        base.push_back(runStrategy(standaloneNvd(), sc, OptTarget::Edp,
                                   templates::kArvrPes)
                           .metrics);
    }

    TextTable table({"Strategy", "Sc6 Lat", "Sc7 Lat", "Sc8 Lat",
                     "Sc9 Lat", "Sc10 Lat", "Sc6 EDP", "Sc7 EDP",
                     "Sc8 EDP", "Sc9 EDP", "Sc10 EDP"});
    std::map<std::string, std::vector<double>> relEdp;
    for (const Strategy& strategy : meshStrategies()) {
        std::vector<std::string> row{strategy.name};
        std::vector<std::string> edpCells;
        for (std::size_t i = 0; i < scenarios.size(); ++i) {
            const RunResult r = runStrategy(strategy, scenarios[i],
                                            OptTarget::Edp,
                                            templates::kArvrPes);
            const double relLat =
                r.metrics.latencySec / base[i].latencySec;
            const double rEdp = r.metrics.edp() / base[i].edp();
            relEdp[strategy.name].push_back(rEdp);
            row.push_back(TextTable::num(relLat, 2));
            edpCells.push_back(TextTable::num(rEdp, 2));
            csv.addRow({strategy.name, scenarios[i].name,
                        TextTable::num(relLat, 4),
                        TextTable::num(rEdp, 4)});
        }
        row.insert(row.end(), edpCells.begin(), edpCells.end());
        table.addRow(std::move(row));
    }
    std::cout << table.render() << "\n";

    auto mean = [&](const std::string& name) {
        double sum = 0.0;
        for (double v : relEdp[name])
            sum += v;
        return sum / relEdp[name].size();
    };
    std::cout << "Mean relative EDP: Het-Sides "
              << TextTable::num(mean("Het-Sides"), 3)
              << " (paper ~0.83), Het-CB "
              << TextTable::num(mean("Het-CB"), 3)
              << ", Simba (NVD) " << TextTable::num(mean("Simba (NVD)"), 3)
              << "\n";
    std::cout << "Shape check: heterogeneous beats standalone NVD on "
                 "average "
              << (mean("Het-Sides") < 1.0 ? "[OK]" : "[MISS]") << "\n";
    return 0;
}
