/**
 * @file
 * google-benchmark microbenchmarks for the flight recorder: the cost
 * of the *disabled* observability hooks (the zero-overhead-when-off
 * contract the runtime and search layers rely on), and the enabled
 * recording paths for scale.
 */

#include <benchmark/benchmark.h>

#include "micro_bench_main.h"
#include "cost/maestro_lite.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/solve_profile.h"
#include "obs/trace.h"
#include "workload/layer.h"

using namespace scar;

namespace
{

/**
 * Calibration anchor: the same GEMM evaluation the other micro suites
 * anchor on. Untouched by observability work, so its time tracks
 * machine speed and normalizes the gate across runners.
 */
void
BM_ObsCalibrationGemm(benchmark::State& state)
{
    const MaestroLite model;
    ChipletSpec spec;
    spec.dataflow = Dataflow::NvdlaWS;
    const Layer gemm = makeGemmLayer(0, "g", 128, 5120, 1280);
    for (auto _ : state) {
        benchmark::DoNotOptimize(model.evalLayer(gemm, spec));
    }
}
BENCHMARK(BM_ObsCalibrationGemm);

/**
 * The disabled path: 64 null-guarded hook sites per iteration — the
 * order of hooks one fleet event or inner search step walks through.
 * DoNotOptimize keeps the null pointers opaque so the guards actually
 * execute instead of folding away; the whole batch should cost a few
 * nanoseconds (predicted not-taken branches).
 */
void
BM_TraceOverheadOff(benchmark::State& state)
{
    obs::FlightRecorder* rec = nullptr;
    benchmark::DoNotOptimize(rec);
    obs::SearchCounters* counters = nullptr;
    benchmark::DoNotOptimize(counters);
    long long sink = 0;
    for (auto _ : state) {
        for (int i = 0; i < 32; ++i) {
            if (rec)
                sink += static_cast<long long>(rec->trace().size());
            obs::SearchCounters::bump(
                counters, &obs::SearchCounters::windowEvals);
        }
        benchmark::DoNotOptimize(sink);
    }
}
BENCHMARK(BM_TraceOverheadOff);

/** A live counter bump (relaxed fetch_add through the null guard). */
void
BM_TraceOverheadCounterOn(benchmark::State& state)
{
    obs::SearchCounters counters;
    obs::SearchCounters* live = &counters;
    benchmark::DoNotOptimize(live);
    for (auto _ : state) {
        obs::SearchCounters::bump(
            live, &obs::SearchCounters::windowEvals);
    }
    benchmark::DoNotOptimize(
        counters.windowEvals.load(std::memory_order_relaxed));
}
BENCHMARK(BM_TraceOverheadCounterOn);

/** Recording one virtual span (mutex + event push). */
void
BM_TraceRecordSpan(benchmark::State& state)
{
    obs::TraceRecorder trace;
    double t = 0.0;
    for (auto _ : state) {
        trace.completeVirtual(1, "w0", "replay", t, 0.001);
        t += 0.001;
    }
    benchmark::DoNotOptimize(trace.size());
}
BENCHMARK(BM_TraceRecordSpan);

/** One histogram record (bucket walk + extrema update). */
void
BM_HistogramRecord(benchmark::State& state)
{
    obs::Histogram histogram;
    double v = 1e-5;
    for (auto _ : state) {
        histogram.record(v);
        v = v < 1.0 ? v * 1.7 : 1e-5;
    }
    benchmark::DoNotOptimize(histogram.count());
}
BENCHMARK(BM_HistogramRecord);

} // namespace

int
main(int argc, char** argv)
{
    return scar::bench::runMicroBench("micro_obs", argc, argv);
}
