#include "bench_util.h"

#include <cstdlib>
#include <filesystem>

namespace scar
{
namespace bench
{

std::vector<Strategy>
meshStrategies()
{
    return {
        Strategy{"Stand.(Shi)", true,
                 [](int pes) {
                     return templates::simba3x3(Dataflow::ShiOS, pes);
                 }},
        Strategy{"Stand.(NVD)", true,
                 [](int pes) {
                     return templates::simba3x3(Dataflow::NvdlaWS, pes);
                 }},
        Strategy{"Simba (Shi)", false,
                 [](int pes) {
                     return templates::simba3x3(Dataflow::ShiOS, pes);
                 }},
        Strategy{"Simba (NVD)", false,
                 [](int pes) {
                     return templates::simba3x3(Dataflow::NvdlaWS, pes);
                 }},
        Strategy{"Het-CB", false,
                 [](int pes) { return templates::hetCb3x3(pes); }},
        Strategy{"Het-Sides", false,
                 [](int pes) { return templates::hetSides3x3(pes); }},
    };
}

std::vector<Strategy>
triangularStrategies()
{
    return {
        Strategy{"Simba-T (Shi)", false,
                 [](int pes) {
                     return templates::simbaTriangular(Dataflow::ShiOS,
                                                       pes);
                 }},
        Strategy{"Simba-T (NVD)", false,
                 [](int pes) {
                     return templates::simbaTriangular(
                         Dataflow::NvdlaWS, pes);
                 }},
        Strategy{"Het-T", false,
                 [](int pes) { return templates::hetTriangular(pes); }},
    };
}

std::vector<Strategy>
strategies6x6()
{
    return {
        Strategy{"Simba-6 (Shi)", false,
                 [](int pes) {
                     return templates::simba6x6(Dataflow::ShiOS, pes);
                 }},
        Strategy{"Simba-6 (NVD)", false,
                 [](int pes) {
                     return templates::simba6x6(Dataflow::NvdlaWS, pes);
                 }},
        Strategy{"Het-Cross", false,
                 [](int pes) { return templates::hetCross6x6(pes); }},
    };
}

Strategy
standaloneNvd()
{
    return Strategy{"Stand.(NVD)", true, [](int pes) {
                        return templates::simba3x3(Dataflow::NvdlaWS,
                                                   pes);
                    }};
}

RunResult
runStrategy(const Strategy& strategy, const Scenario& scenario,
            OptTarget target, int pes, ScarOptions base)
{
    const Mcm mcm = strategy.makeMcm(pes);
    RunResult result;
    if (strategy.standalone) {
        result.schedule = scheduleStandalone(scenario, mcm);
    } else {
        base.target = target;
        Scar scar(scenario, mcm, base);
        result.schedule = scar.run();
    }
    result.metrics = result.schedule.metrics;
    result.candidates = result.schedule.candidates;
    return result;
}

std::string
csvPath(const std::string& name)
{
    std::filesystem::create_directories("bench_results");
    return "bench_results/" + name + ".csv";
}

std::string
jsonPath(const std::string& name)
{
    std::filesystem::create_directories("bench_results");
    return "bench_results/" + name + ".json";
}

std::vector<std::string>
microBenchArgs(const std::string& name, int argc, char** argv)
{
    std::vector<std::string> args(argv, argv + argc);
    // Flag detection must not confuse --benchmark_out with
    // --benchmark_out_format: match "<flag>=" or the exact flag.
    auto hasFlag = [&](const std::string& flag) {
        for (const std::string& arg : args) {
            if (arg == flag || arg.rfind(flag + "=", 0) == 0)
                return true;
        }
        return false;
    };
    if (!hasFlag("--benchmark_out")) {
        args.push_back("--benchmark_out=" + jsonPath(name));
        if (!hasFlag("--benchmark_out_format"))
            args.push_back("--benchmark_out_format=json");
    }
    const char* minTime = std::getenv("SCAR_BENCH_MIN_TIME_S");
    if (minTime != nullptr && *minTime != '\0' &&
        !hasFlag("--benchmark_min_time")) {
        args.push_back(std::string("--benchmark_min_time=") + minTime);
    }
    return args;
}

int
envInt(const char* name, int fallback)
{
    const char* value = std::getenv(name);
    return value != nullptr && *value != '\0' ? std::atoi(value)
                                              : fallback;
}

double
envDouble(const char* name, double fallback)
{
    const char* value = std::getenv(name);
    return value != nullptr && *value != '\0' ? std::atof(value)
                                              : fallback;
}

std::string
envStr(const char* name, const std::string& fallback)
{
    const char* value = std::getenv(name);
    return value != nullptr && *value != '\0' ? std::string(value)
                                              : fallback;
}

} // namespace bench
} // namespace scar
