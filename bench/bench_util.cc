#include "bench_util.h"

#include <cstdlib>
#include <filesystem>

namespace scar
{
namespace bench
{

std::vector<Strategy>
meshStrategies()
{
    return {
        Strategy{"Stand.(Shi)", true,
                 [](int pes) {
                     return templates::simba3x3(Dataflow::ShiOS, pes);
                 }},
        Strategy{"Stand.(NVD)", true,
                 [](int pes) {
                     return templates::simba3x3(Dataflow::NvdlaWS, pes);
                 }},
        Strategy{"Simba (Shi)", false,
                 [](int pes) {
                     return templates::simba3x3(Dataflow::ShiOS, pes);
                 }},
        Strategy{"Simba (NVD)", false,
                 [](int pes) {
                     return templates::simba3x3(Dataflow::NvdlaWS, pes);
                 }},
        Strategy{"Het-CB", false,
                 [](int pes) { return templates::hetCb3x3(pes); }},
        Strategy{"Het-Sides", false,
                 [](int pes) { return templates::hetSides3x3(pes); }},
    };
}

std::vector<Strategy>
triangularStrategies()
{
    return {
        Strategy{"Simba-T (Shi)", false,
                 [](int pes) {
                     return templates::simbaTriangular(Dataflow::ShiOS,
                                                       pes);
                 }},
        Strategy{"Simba-T (NVD)", false,
                 [](int pes) {
                     return templates::simbaTriangular(
                         Dataflow::NvdlaWS, pes);
                 }},
        Strategy{"Het-T", false,
                 [](int pes) { return templates::hetTriangular(pes); }},
    };
}

std::vector<Strategy>
strategies6x6()
{
    return {
        Strategy{"Simba-6 (Shi)", false,
                 [](int pes) {
                     return templates::simba6x6(Dataflow::ShiOS, pes);
                 }},
        Strategy{"Simba-6 (NVD)", false,
                 [](int pes) {
                     return templates::simba6x6(Dataflow::NvdlaWS, pes);
                 }},
        Strategy{"Het-Cross", false,
                 [](int pes) { return templates::hetCross6x6(pes); }},
    };
}

Strategy
standaloneNvd()
{
    return Strategy{"Stand.(NVD)", true, [](int pes) {
                        return templates::simba3x3(Dataflow::NvdlaWS,
                                                   pes);
                    }};
}

RunResult
runStrategy(const Strategy& strategy, const Scenario& scenario,
            OptTarget target, int pes, ScarOptions base)
{
    const Mcm mcm = strategy.makeMcm(pes);
    RunResult result;
    if (strategy.standalone) {
        result.schedule = scheduleStandalone(scenario, mcm);
    } else {
        base.target = target;
        Scar scar(scenario, mcm, base);
        result.schedule = scar.run();
    }
    result.metrics = result.schedule.metrics;
    result.candidates = result.schedule.candidates;
    return result;
}

std::string
csvPath(const std::string& name)
{
    std::filesystem::create_directories("bench_results");
    return "bench_results/" + name + ".csv";
}

int
envInt(const char* name, int fallback)
{
    const char* value = std::getenv(name);
    return value != nullptr && *value != '\0' ? std::atoi(value)
                                              : fallback;
}

double
envDouble(const char* name, double fallback)
{
    const char* value = std::getenv(name);
    return value != nullptr && *value != '\0' ? std::atof(value)
                                              : fallback;
}

} // namespace bench
} // namespace scar
