/**
 * @file
 * LLM autoregressive serving: continuous batching vs the static
 * batch-and-replay baseline on chat-style traffic.
 *
 * One decoder family is served as prefill + decode-step variants
 * (workload/transformer_builder.h): Poisson arrivals carry a prompt
 * length and a geometric (long-tail) output length, so a few requests
 * decode far past the batch median. Static mode locks each decode
 * batch until its longest member finishes — short sequences ride as
 * padding and fresh arrivals wait out whole batch lifetimes. The
 * continuous mode retires sequences at their own final round and
 * joins waiters into the running stream at step-aligned window
 * boundaries, which is exactly where the long-tail traffic's p99 and
 * SLO misses come from.
 *
 * Output: one table/CSV row per (mode, load) cell — TTFT, TPOT,
 * end-to-end latency percentiles, SLO misses, decode rounds, joins,
 * decode-batch fill, generated tokens/s.
 *
 * Gates (nonzero exit on failure, CI runs this at reduced scale):
 *  - quality: at the highest load, Continuous must beat Static on
 *    p99 end-to-end latency or SLO miss rate;
 *  - determinism: the serial (1 solver thread, 1 engine thread) and
 *    parallel (8/8) continuous runs must render byte-identical
 *    reports (dumped to bench_results/llm_serving_report_*.txt and
 *    cmp'd again by CI).
 *
 * Scale knob: SCAR_BENCH_REQUESTS (default 600 chat requests).
 */

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/csv.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "eval/reporter.h"
#include "runtime/arrival.h"
#include "runtime/fleet.h"
#include "workload/transformer_builder.h"

namespace
{

using namespace scar;
using namespace scar::runtime;
using Clock = std::chrono::steady_clock;

/** Chat decoder: 4 coarse blocks, d = 256 — big enough that decode
 *  steps cost visible virtual time, small enough to solve fast. */
TransformerConfig
chatDecoder()
{
    TransformerConfig cfg;
    cfg.name = "chat";
    cfg.numBlocks = 4;
    cfg.dModel = 256;
    cfg.dFf = 1024;
    cfg.vocab = 0;
    return cfg;
}

std::vector<ServedModel>
chatCatalog(double rateRps)
{
    std::vector<ServedModel> catalog(1);
    const TransformerConfig cfg = chatDecoder();
    catalog[0].model = buildTransformer(cfg);
    catalog[0].model.batch = 8;
    catalog[0].rateRps = rateRps;
    catalog[0].sloSec = 2.0;
    catalog[0].llm.autoregressive = true;
    catalog[0].llm.decoder = cfg;
    catalog[0].llm.promptBucket = 64;
    catalog[0].llm.contextBucket = 256;
    catalog[0].llm.maxDecodeSteps = 16;
    catalog[0].llm.meanPromptTokens = 96;
    catalog[0].llm.maxPromptTokens = 256;
    catalog[0].llm.meanOutputTokens = 48.0;
    catalog[0].llm.maxOutputTokens = 384;
    return catalog;
}

struct CellResult
{
    ServingReport report;
    double wallMs = 0.0;
    std::string rendered;
};

CellResult
runCell(const std::vector<ServedModel>& catalog,
        const std::vector<Request>& trace, LlmBatchingMode mode,
        ThreadPool& pool, int engineThreads)
{
    FleetOptions options;
    options.shards = 2;
    options.routing = RoutingPolicy::BestFit;
    options.engineThreads = engineThreads;
    options.serving.pool = &pool;
    options.serving.modeledSolveSec = 0.002;
    options.serving.switchOverheadSec = 0.0005;
    options.serving.admission.maxQueueDelaySec = 0.01;
    options.serving.admission.llmBatching = mode;
    FleetSimulator fleet(
        catalog, templates::hetSides3x3(templates::kArvrPes),
        options);

    CellResult cell;
    const auto t0 = Clock::now();
    cell.report = fleet.run(trace);
    cell.wallMs =
        std::chrono::duration<double, std::milli>(Clock::now() - t0)
            .count();
    // Pin the reporter's engineThreads render gate so the
    // serial-vs-parallel dump comparison also covers the epoch
    // statistics (identical at every thread count by contract).
    ServingReport normalized = cell.report;
    normalized.engineThreads = 8;
    cell.rendered = describeServingReport(normalized);
    return cell;
}

bool
writeText(const std::string& path, const std::string& text)
{
    std::ofstream out(path);
    out << text;
    return static_cast<bool>(out);
}

} // namespace

int
main()
{
    const int kRequests = bench::envInt("SCAR_BENCH_REQUESTS", 600);

    ThreadPool pool(0); // solver workers, default concurrency

    TextTable table({"Mode", "Rate", "TTFT p99 (s)", "TPOT (s)",
                     "p50 (s)", "p99 (s)", "SLO miss", "Rounds",
                     "Joins", "Batch fill", "Tok/s", "Wall (ms)"});
    CsvWriter csv(bench::csvPath("llm_serving"),
                  {"mode", "rate_rps", "requests", "wall_ms",
                   "ttft_mean_s", "ttft_p99_s", "tpot_mean_s",
                   "p50_s", "p99_s", "slo_miss_rate",
                   "decode_rounds", "joins", "mean_decode_batch",
                   "gen_tokens_per_s", "searches"});

    auto addRow = [&](const char* mode, double rate,
                      const CellResult& cell) {
        const ServingReport& r = cell.report;
        table.addRow(
            {mode, TextTable::num(rate, 0),
             TextTable::num(r.p99TtftSec, 4),
             TextTable::num(r.meanTpotSec, 5),
             TextTable::num(r.p50LatencySec, 3),
             TextTable::num(r.p99LatencySec, 3),
             TextTable::num(r.sloViolationRate * 100.0, 1) + "%",
             std::to_string(r.llmDecodeRounds),
             std::to_string(r.llmJoins),
             TextTable::num(r.llmMeanDecodeBatch, 2),
             TextTable::num(r.genTokensPerSec, 0),
             TextTable::num(cell.wallMs, 0)});
        csv.addRow({mode, TextTable::num(rate, 2),
                    std::to_string(r.offered),
                    TextTable::num(cell.wallMs, 3),
                    TextTable::num(r.meanTtftSec, 6),
                    TextTable::num(r.p99TtftSec, 6),
                    TextTable::num(r.meanTpotSec, 6),
                    TextTable::num(r.p50LatencySec, 6),
                    TextTable::num(r.p99LatencySec, 6),
                    TextTable::num(r.sloViolationRate, 6),
                    std::to_string(r.llmDecodeRounds),
                    std::to_string(r.llmJoins),
                    TextTable::num(r.llmMeanDecodeBatch, 4),
                    TextTable::num(r.genTokensPerSec, 3),
                    std::to_string(r.cache.misses)});
    };

    // ---- load sweep: Static vs Continuous at equal traffic -------
    const std::vector<double> rates = {20.0, 40.0};
    CellResult contHigh;
    CellResult statHigh;
    for (const double rate : rates) {
        const auto catalog = chatCatalog(rate);
        const auto trace =
            llmPoissonTrace(catalog, kRequests, /*seed=*/11);
        const CellResult stat =
            runCell(catalog, trace, LlmBatchingMode::Static, pool, 1);
        const CellResult cont = runCell(
            catalog, trace, LlmBatchingMode::Continuous, pool, 1);
        addRow("static", rate, stat);
        addRow("continuous", rate, cont);
        if (rate == rates.back()) {
            statHigh = stat;
            contHigh = cont;
        }
    }

    std::cout << "LLM serving: " << kRequests
              << " chat requests (geometric output lengths, mean 48,"
                 " cap 384)\nagainst a 4-block d=256 decoder on 2"
                 " shards; static batch-and-replay vs\ncontinuous"
                 " batching at equal load.\n\n";
    std::cout << table.render();
    std::cout << "\nCSV: " << bench::csvPath("llm_serving") << "\n";

    // ---- quality gate --------------------------------------------
    const bool beatsP99 =
        contHigh.report.p99LatencySec < statHigh.report.p99LatencySec;
    const bool beatsSlo = contHigh.report.sloViolationRate <
                          statHigh.report.sloViolationRate;
    if (!beatsP99 && !beatsSlo) {
        std::cerr << "QUALITY GATE FAILED: continuous batching beat "
                     "static on neither p99 ("
                  << contHigh.report.p99LatencySec << " vs "
                  << statHigh.report.p99LatencySec
                  << ") nor SLO miss rate ("
                  << contHigh.report.sloViolationRate << " vs "
                  << statHigh.report.sloViolationRate << ")\n";
        return 1;
    }
    std::cout << "\nQuality: continuous beats static at "
              << rates.back() << " rps ("
              << (beatsP99 ? "p99" : "SLO miss rate") << ")\n";

    // ---- determinism gate ----------------------------------------
    // The continuous path re-routes at every join cut, so it is the
    // run worth pinning across solver and engine thread counts.
    const auto catalog = chatCatalog(rates.back());
    const auto trace =
        llmPoissonTrace(catalog, kRequests, /*seed=*/11);
    ThreadPool serialPool(1);
    ThreadPool widePool(8);
    const CellResult serial = runCell(
        catalog, trace, LlmBatchingMode::Continuous, serialPool, 1);
    const CellResult parallel = runCell(
        catalog, trace, LlmBatchingMode::Continuous, widePool, 8);
    const std::string serialPath =
        "bench_results/llm_serving_report_serial.txt";
    const std::string parallelPath =
        "bench_results/llm_serving_report_parallel.txt";
    if (!writeText(serialPath, serial.rendered) ||
        !writeText(parallelPath, parallel.rendered)) {
        std::cerr << "FAILED to write report dumps\n";
        return 1;
    }
    if (serial.rendered != parallel.rendered) {
        std::cerr << "DETERMINISM VIOLATION: serial and 8-thread "
                     "reports differ (see "
                  << serialPath << " vs " << parallelPath << ")\n";
        return 1;
    }
    std::cout << "Determinism: 1-thread and 8-thread reports are "
                 "byte-identical (" << serialPath << ")\n";
    return 0;
}
