/**
 * @file
 * Shared main() body for the Google-Benchmark micro benches.
 *
 * Header-only on purpose: bench_util.cc links into every bench
 * binary, and only the micro benches link benchmark::benchmark, so
 * the one function that touches the benchmark API must not live in
 * the shared library. Each micro bench's main() is one call:
 *
 *   int main(int argc, char** argv)
 *   { return scar::bench::runMicroBench("micro_sched", argc, argv); }
 *
 * Behavior: always leaves bench_results/<name>.json (the
 * regression-gate artifact) and honors the SCAR_BENCH_MIN_TIME_S
 * smoke knob; explicit --benchmark_* flags win over both defaults
 * (see microBenchArgs).
 */

#ifndef SCAR_BENCH_MICRO_BENCH_MAIN_H
#define SCAR_BENCH_MICRO_BENCH_MAIN_H

#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace scar
{
namespace bench
{

inline int
runMicroBench(const std::string& name, int argc, char** argv)
{
    std::vector<std::string> args = microBenchArgs(name, argc, argv);
    std::vector<char*> argvExt;
    argvExt.reserve(args.size());
    for (std::string& arg : args)
        argvExt.push_back(arg.data());
    int argcExt = static_cast<int>(argvExt.size());
    benchmark::Initialize(&argcExt, argvExt.data());
    if (benchmark::ReportUnrecognizedArguments(argcExt, argvExt.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}

} // namespace bench
} // namespace scar

#endif // SCAR_BENCH_MICRO_BENCH_MAIN_H
