/**
 * @file
 * Fleet scaling sweep: serving throughput of the online runtime
 * across worker-pool threads x MCM shards, against the blocking
 * single-package PR 1 baseline.
 *
 * Every cell serves the same saturating Table III Sc4 datacenter
 * Poisson stream (~4x one package's service ceiling) on cold caches,
 * charging a modeled 0.25 s schedule-solve latency (the host-side
 * search cost PR 1 treated as free; our lite search takes ~60 ms
 * serially on this mix, the paper-scale EA searches far longer) and
 * a 2 ms weight re-staging overhead on mix switches. The baseline row runs the PR 1 pipeline:
 * one shard, serial search, and a blocking cache path — a new mix's
 * search starts only at dispatch time and the package idles through
 * all of it. The sweep rows run the async runtime: solves overlap
 * in-flight replays (speculative background solves while every shard
 * is busy), so the solve-stall column collapses, and shards multiply
 * the saturated service rate.
 *
 * Two orthogonal effects:
 *  - Shards and async solves scale *serving throughput*
 *    (ServingReport::throughputRps, completed per virtual second);
 *    the Speedup column is relative to the blocking baseline row.
 *  - Threads scale *wall time* only: the same virtual result is
 *    produced faster when searches fan out across the pool. Virtual
 *    columns are bit-identical across thread counts — the
 *    determinism contract of the parallel search core.
 *
 * Raw series: bench_results/fleet_scaling.csv (columns documented in
 * bench/README.md).
 */

#include <chrono>
#include <cstdlib>
#include <iostream>

#include "bench_util.h"
#include "common/csv.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "eval/scenario_suite.h"
#include "runtime/fleet.h"

namespace
{

constexpr double kModeledSolveSec = 0.25;
constexpr double kSwitchOverheadSec = 0.002;

} // namespace

int
main()
{
    using namespace scar;
    using namespace scar::runtime;
    using Clock = std::chrono::steady_clock;

    const Scenario sc4 = suite::datacenterScenario(4);
    // ~4x the single-package service ceiling for this mix, so one,
    // two, and four shards all stay saturated.
    const std::vector<double> ratesRps = {84.0, 252.0, 10.5, 336.0};
    const std::vector<double> slosSec = {2.5, 1.5, 2.0, 1.0};
    // Requests per cell; the bench-smoke CI job shrinks this via the
    // environment to keep the sweep to seconds.
    const int kRequests = bench::envInt("SCAR_BENCH_REQUESTS", 2000);

    std::vector<ServedModel> catalog;
    for (std::size_t m = 0; m < sc4.models.size(); ++m) {
        ServedModel sm;
        sm.model = sc4.models[m];
        sm.rateRps = ratesRps[m];
        sm.sloSec = slosSec[m];
        catalog.push_back(std::move(sm));
    }
    const std::vector<Request> trace =
        poissonTrace(catalog, kRequests, /*seed=*/7);

    TextTable table({"Mode", "Threads", "Shards", "Virt req/s",
                     "Speedup", "Wall (ms)", "p99 (s)", "Searches",
                     "Stall (s)"});
    CsvWriter csv(bench::csvPath("fleet_scaling"),
                  {"mode", "threads", "shards", "virt_throughput_rps",
                   "speedup", "wall_ms", "req_per_wall_s", "p99_s",
                   "slo_miss_rate", "searches", "solve_stall_s"});

    double baselineRps = 0.0;
    auto runCell = [&](const char* mode, int threads, int shards,
                       bool speculative) {
        ThreadPool pool(threads);
        FleetOptions options;
        options.shards = shards;
        options.routing = RoutingPolicy::LeastLoaded;
        options.speculativeSolve = speculative;
        options.serving.pool = &pool;
        options.serving.admission.maxQueueDelaySec = 0.1;
        options.serving.modeledSolveSec = kModeledSolveSec;
        options.serving.switchOverheadSec = kSwitchOverheadSec;
        FleetSimulator fleet(catalog, templates::hetSides3x3(),
                             options);

        const auto t0 = Clock::now();
        const ServingReport report = fleet.run(trace);
        const double wallMs =
            std::chrono::duration<double, std::milli>(Clock::now() -
                                                      t0)
                .count();
        if (baselineRps == 0.0)
            baselineRps = report.throughputRps;
        const double speedup = report.throughputRps / baselineRps;

        table.addRow({mode, std::to_string(threads),
                      std::to_string(shards),
                      TextTable::num(report.throughputRps, 1),
                      TextTable::num(speedup, 2) + "x",
                      TextTable::num(wallMs, 0),
                      TextTable::num(report.p99LatencySec, 3),
                      std::to_string(report.cache.misses),
                      TextTable::num(report.solveStallSec, 3)});
        csv.addRow({mode, std::to_string(threads),
                    std::to_string(shards),
                    TextTable::num(report.throughputRps, 3),
                    TextTable::num(speedup, 4),
                    TextTable::num(wallMs, 3),
                    TextTable::num(report.completed /
                                       (wallMs / 1000.0),
                                   3),
                    TextTable::num(report.p99LatencySec, 6),
                    TextTable::num(report.sloViolationRate, 6),
                    std::to_string(report.cache.misses),
                    TextTable::num(report.solveStallSec, 6)});
    };

    // The PR 1 pipeline: one package, serial search, blocking miss.
    runCell("sync", 1, 1, /*speculative=*/false);
    // The async fleet sweep.
    for (const int threads : {1, 2, 4, 8})
        for (const int shards : {1, 2, 4})
            runCell("async", threads, shards, /*speculative=*/true);

    std::cout << "Fleet scaling sweep: Sc4 datacenter stream ("
              << kRequests
              << " requests per cell, cold caches, least-loaded "
                 "routing,\nmodeled solve "
              << kModeledSolveSec << " s, switch overhead "
              << kSwitchOverheadSec << " s)\n\n";
    std::cout << table.render();
    std::cout << "\nBaseline row = PR 1 semantics (blocking cache "
                 "path). Virtual columns are identical\nacross "
                 "thread counts (determinism contract); wall columns "
                 "scale with host cores ("
              << ThreadPool::defaultConcurrency()
              << "\navailable here).\n";
    std::cout << "\nCSV: " << bench::csvPath("fleet_scaling") << "\n";
    return 0;
}
