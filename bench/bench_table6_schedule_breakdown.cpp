/**
 * @file
 * Figure 9 + Table VI — the top-scoring Het-Sides schedule for
 * Scenario 4 under the EDP search: per-window chiplet allocation
 * (Figure 9) and the per-model per-window latency breakdown with
 * cumulative window latencies (Table VI).
 */

#include <iostream>

#include "eval/reporter.h"
#include "bench_util.h"

using namespace scar;
using namespace scar::bench;

int
main()
{
    std::cout << "=== Figure 9 / Table VI: top Het-Sides schedule for "
                 "Scenario 4 (EDP search) ===\n\n";

    const Scenario sc = suite::datacenterScenario(4);
    const Mcm mcm = templates::hetSides3x3();
    ScarOptions opts;
    opts.target = OptTarget::Edp;
    Scar scar(sc, mcm, opts);
    const ScheduleResult result = scar.run();

    std::cout << describeSchedule(sc, mcm, result) << "\n";
    std::cout << "Per-window latency breakdown (Table VI layout, "
                 "seconds at 500 MHz):\n";
    std::cout << describeWindowBreakdown(sc, result) << "\n";

    // Paper shape: the greedy packing yields non-uniform windows and
    // small workloads (ResNet-50, U-Net) finish in early windows while
    // the LLMs dominate the later ones.
    int resnetLastWindow = -1;
    int gptLastWindow = -1;
    for (std::size_t w = 0; w < result.windows.size(); ++w) {
        const auto& wa = result.windows[w].assignment;
        if (!wa.perModel[3].empty())
            resnetLastWindow = static_cast<int>(w); // ResNet-50
        if (!wa.perModel[0].empty())
            gptLastWindow = static_cast<int>(w); // GPT-L
    }
    std::cout << "Shape check: ResNet-50 finishes by window "
              << resnetLastWindow << ", GPT-L runs through window "
              << gptLastWindow << " "
              << (resnetLastWindow <= gptLastWindow ? "[OK]" : "[MISS]")
              << "\n";
    return 0;
}
