/**
 * @file
 * google-benchmark microbenchmarks for the discrete-event runtime:
 * host-side event throughput of the fleet engine on a warm schedule
 * cache — the epoch drain, the indexed calendar, and the
 * cluster -> pod -> shard routing are what is being timed, not the
 * solver (every mix is cached after the warmup replay).
 *
 * Gated by scripts/check_bench_regression.py against
 * bench_results/micro_runtime.json.
 */

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "micro_bench_main.h"
#include "common/thread_pool.h"
#include "cost/maestro_lite.h"
#include "runtime/fleet.h"
#include "workload/layer.h"
#include "workload/model_zoo.h"
#include "workload/transformer_builder.h"

using namespace scar;
using namespace scar::runtime;

namespace
{

/**
 * Calibration anchor: the same GEMM evaluation the other micro suites
 * anchor on. Untouched by runtime work, so its time tracks machine
 * speed and normalizes the gate across runners.
 */
void
BM_RuntimeCalibrationGemm(benchmark::State& state)
{
    const MaestroLite model;
    ChipletSpec spec;
    spec.dataflow = Dataflow::NvdlaWS;
    const Layer gemm = makeGemmLayer(0, "g", 128, 5120, 1280);
    for (auto _ : state) {
        benchmark::DoNotOptimize(model.evalLayer(gemm, spec));
    }
}
BENCHMARK(BM_RuntimeCalibrationGemm);

/**
 * One saturated fleet replay per iteration, solver cost excluded: a
 * warmup replay populates the shared schedule cache, so the timed
 * replays walk the event loop alone — epoch drains, calendar
 * updates, BestFit routing over the pod index, commits. The argument
 * is the shard count; the request stream scales with it (constant
 * per-shard load), so items/s is comparable across sizes and a
 * near-flat rate across the 4x fleet growth is the O(log N) routing
 * contract.
 */
void
BM_FleetEngineEvents(benchmark::State& state)
{
    const int shards = static_cast<int>(state.range(0));
    const int requests = 50 * shards;

    std::vector<ServedModel> catalog;
    {
        ServedModel a;
        a.model = zoo::eyeCod(4);
        a.rateRps = 20.0 * shards;
        a.sloSec = 0.5;
        catalog.push_back(std::move(a));
        ServedModel b;
        b.model = zoo::handSP(2);
        b.rateRps = 12.0 * shards;
        b.sloSec = 0.5;
        catalog.push_back(std::move(b));
    }
    const std::vector<Request> trace =
        poissonTrace(catalog, requests, /*seed=*/11);

    ThreadPool pool(1);
    FleetOptions options;
    options.shards = shards;
    options.routing = RoutingPolicy::BestFit;
    options.serving.pool = &pool;
    options.serving.modeledSolveSec = 0.0;
    FleetSimulator fleet(catalog, templates::hetSides3x3(templates::kArvrPes),
                         options);
    fleet.run(trace); // warm the schedule cache

    for (auto _ : state) {
        benchmark::DoNotOptimize(fleet.run(trace));
    }
    state.SetItemsProcessed(state.iterations() * requests);
}
BENCHMARK(BM_FleetEngineEvents)->Arg(4)->Arg(16);

/**
 * The LLM counterpart of BM_FleetEngineEvents: continuous-batching
 * chat traffic on a warm cache, so the timed loop covers the decode
 * queue, the join/release epoch bound terms, and per-sequence
 * retirement on top of the plain event machinery.
 */
void
BM_FleetEngineEventsLlm(benchmark::State& state)
{
    const int shards = static_cast<int>(state.range(0));
    const int requests = 25 * shards;

    TransformerConfig cfg;
    cfg.name = "chat";
    cfg.numBlocks = 2;
    cfg.dModel = 128;
    cfg.dFf = 256;
    cfg.vocab = 0;
    std::vector<ServedModel> catalog(1);
    catalog[0].model = buildTransformer(cfg);
    catalog[0].model.batch = 8;
    catalog[0].rateRps = 30.0 * shards;
    catalog[0].sloSec = 2.0;
    catalog[0].llm.autoregressive = true;
    catalog[0].llm.decoder = cfg;
    catalog[0].llm.promptBucket = 64;
    catalog[0].llm.contextBucket = 256;
    catalog[0].llm.maxDecodeSteps = 32;
    catalog[0].llm.meanOutputTokens = 24.0;
    catalog[0].llm.maxOutputTokens = 96;
    catalog[0].llm.maxPromptTokens = 128;
    const std::vector<Request> trace =
        llmPoissonTrace(catalog, requests, /*seed=*/11);

    ThreadPool pool(1);
    FleetOptions options;
    options.shards = shards;
    options.routing = RoutingPolicy::BestFit;
    options.serving.pool = &pool;
    options.serving.modeledSolveSec = 0.0;
    options.serving.admission.llmBatching =
        LlmBatchingMode::Continuous;
    FleetSimulator fleet(catalog, templates::hetSides3x3(templates::kArvrPes),
                         options);
    fleet.run(trace); // warm the schedule cache

    for (auto _ : state) {
        benchmark::DoNotOptimize(fleet.run(trace));
    }
    state.SetItemsProcessed(state.iterations() * requests);
}
BENCHMARK(BM_FleetEngineEventsLlm)->Arg(4);

/**
 * Batched tick commits in isolation: a deep fleet whose shards all
 * replay multi-window schedules with arrivals absorbed, so almost
 * every epoch commits long same-shard runs through the merge set.
 * The contrast with BM_FleetEngineEvents (mostly short batches) is
 * the per-tick erase/insert saving the batching buys; the regression
 * gate holds the absolute event rate.
 */
void
BM_FleetEngineCommitBatched(benchmark::State& state)
{
    const int shards = 8;
    const int requests = 600;

    // One model, huge batch cap: dispatches carry many requests, so
    // replays are long and boundary ticks dominate arrivals.
    std::vector<ServedModel> catalog(1);
    catalog[0].model = zoo::eyeCod(8);
    catalog[0].rateRps = 160.0 * shards;
    catalog[0].sloSec = 5.0;
    const std::vector<Request> trace =
        poissonTrace(catalog, requests, /*seed=*/13);

    ThreadPool pool(1);
    FleetOptions options;
    options.shards = shards;
    options.routing = RoutingPolicy::BestFit;
    options.serving.pool = &pool;
    options.serving.modeledSolveSec = 0.0;
    options.serving.admission.maxQueueDelaySec = 0.05;
    FleetSimulator fleet(catalog, templates::hetSides3x3(templates::kArvrPes),
                         options);
    fleet.run(trace); // warm the schedule cache

    for (auto _ : state) {
        benchmark::DoNotOptimize(fleet.run(trace));
    }
    state.SetItemsProcessed(state.iterations() * requests);
}
BENCHMARK(BM_FleetEngineCommitBatched);

} // namespace

int
main(int argc, char** argv)
{
    return scar::bench::runMicroBench("micro_runtime", argc, argv);
}
