/**
 * @file
 * google-benchmark microbenchmarks for the scheduler engines:
 * scheduling-tree path enumeration, per-window SCHED search, and the
 * end-to-end SCAR run on a representative scenario.
 */

#include <benchmark/benchmark.h>

#include "arch/mcm_templates.h"
#include "micro_bench_main.h"
#include "eval/scenario_suite.h"
#include "sched/scar.h"
#include "sched/sched_tree.h"
#include "workload/model_zoo.h"

using namespace scar;

namespace
{

void
BM_PathEnumeration(benchmark::State& state)
{
    const Topology topo = Topology::mesh(6, 6);
    const std::vector<bool> blocked(36, false);
    const int length = static_cast<int>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            enumeratePathsAllRoots(topo, length, blocked, 96));
    }
}
BENCHMARK(BM_PathEnumeration)->Arg(2)->Arg(4)->Arg(6);

void
BM_WindowSearch(benchmark::State& state)
{
    Scenario sc;
    sc.name = "pair";
    sc.models = {zoo::eyeCod(8), zoo::bertBase(2)};
    sc.finalize();
    const Mcm mcm = templates::hetSides3x3();
    const CostDb db(sc, mcm);
    const WindowScheduler sched(db, OptTarget::Edp);
    WindowAssignment wa;
    wa.perModel = {LayerRange{0, sc.models[0].numLayers() - 1},
                   LayerRange{0, 11}};
    for (auto _ : state) {
        benchmark::DoNotOptimize(sched.search(wa, {3, 3}, /*seed=*/1));
    }
}
BENCHMARK(BM_WindowSearch);

void
BM_ScarFullRun(benchmark::State& state)
{
    const Scenario sc = suite::datacenterScenario(
        static_cast<int>(state.range(0)));
    const Mcm mcm = templates::hetSides3x3();
    for (auto _ : state) {
        Scar scar(sc, mcm, ScarOptions{});
        benchmark::DoNotOptimize(scar.run());
    }
}
BENCHMARK(BM_ScarFullRun)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void
BM_ScarEvolutionary6x6(benchmark::State& state)
{
    const Scenario sc = suite::datacenterScenario(4);
    const Mcm mcm = templates::hetCross6x6();
    for (auto _ : state) {
        ScarOptions opts;
        opts.mode = SearchMode::Evolutionary;
        opts.nsplits = 2;
        Scar scar(sc, mcm, opts);
        benchmark::DoNotOptimize(scar.run());
    }
}
BENCHMARK(BM_ScarEvolutionary6x6)->Unit(benchmark::kMillisecond);

/**
 * Calibration anchor for scripts/check_bench_regression.py: MaestroLite
 * layer evaluation exercises no scheduler or cost-aggregation code, so
 * its time tracks machine speed, not this repo's hot-path work. Keep
 * it untouched by search optimizations.
 */
void
BM_CalibrationGemm(benchmark::State& state)
{
    const MaestroLite model;
    ChipletSpec spec;
    spec.dataflow = Dataflow::NvdlaWS;
    const Layer gemm = makeGemmLayer(0, "g", 128, 5120, 1280);
    for (auto _ : state) {
        benchmark::DoNotOptimize(model.evalLayer(gemm, spec));
    }
}
BENCHMARK(BM_CalibrationGemm);

/**
 * Path enumeration through the PathCache on a hit — the lookup the
 * beam search pays once per (length, occupancy) beam state.
 */
void
BM_PathCacheHit(benchmark::State& state)
{
    const Topology topo = Topology::mesh(6, 6);
    const std::vector<bool> blocked(36, false);
    PathCache cache;
    benchmark::DoNotOptimize(cache.get(topo, 4, blocked, 96));
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.get(topo, 4, blocked, 96));
    }
}
BENCHMARK(BM_PathCacheHit);

} // namespace

int
main(int argc, char** argv)
{
    return scar::bench::runMicroBench("micro_sched", argc, argv);
}
