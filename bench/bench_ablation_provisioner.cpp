/**
 * @file
 * Section V-E ablation 3 — rule-based vs exhaustive PROV: the EDP
 * search repeated for scenarios 3-5 on the main strategies with an
 * exhaustive search over the node allocations N_i.
 *
 * Paper shape targets: exhaustive search refines the results but
 * preserves the insights — Het-Sides stays superior on scenarios 4-5,
 * Simba (NVD) stays superior on scenario 3.
 */

#include <iostream>

#include <map>

#include "common/csv.h"
#include "common/table.h"
#include "bench_util.h"

using namespace scar;
using namespace scar::bench;

int
main()
{
    std::cout << "=== Ablation: rule-based vs exhaustive provisioning "
                 "(EDP search) ===\n\n";

    CsvWriter csv(csvPath("ablation_provisioner"),
                  {"scenario", "strategy", "rule_edp", "exhaustive_edp",
                   "improvement_pct"});

    std::map<int, std::map<std::string, double>> exhaustiveEdp;
    std::map<int, std::map<std::string, double>> ruleEdp;
    for (int idx : {3, 4, 5}) {
        const Scenario sc = suite::datacenterScenario(idx);
        std::cout << "--- " << sc.name << " ---\n";
        TextTable table({"Strategy", "Rule EDP", "Exhaustive EDP",
                         "Improvement"});
        for (const Strategy& strategy : meshStrategies()) {
            if (strategy.standalone)
                continue;
            const double rule =
                runStrategy(strategy, sc, OptTarget::Edp,
                            templates::kDatacenterPes)
                    .metrics.edp();
            ScarOptions opts;
            opts.prov.mode = ProvisionerOptions::Mode::Exhaustive;
            opts.prov.maxCandidates = 48;
            const double exhaustive =
                runStrategy(strategy, sc, OptTarget::Edp,
                            templates::kDatacenterPes, opts)
                    .metrics.edp();
            exhaustiveEdp[idx][strategy.name] = exhaustive;
            ruleEdp[idx][strategy.name] = rule;
            const double pct = 100.0 * (1.0 - exhaustive / rule);
            table.addRow({strategy.name, TextTable::num(rule, 3),
                          TextTable::num(exhaustive, 3),
                          TextTable::num(pct, 1) + "%"});
            csv.addRow({sc.name, strategy.name, TextTable::num(rule, 6),
                        TextTable::num(exhaustive, 6),
                        TextTable::num(pct, 2)});
        }
        std::cout << table.render() << "\n";
    }

    // The transferable claim of the ablation: the added search effort
    // refines numbers but does not change which strategy wins each
    // scenario (the paper reports the same property for its results).
    bool winnersConsistent = true;
    for (int idx : {3, 4, 5}) {
        std::string ruleWinner;
        std::string exhWinner;
        double ruleBest = 1e30;
        double exhBest = 1e30;
        for (const auto& [name, edp] : exhaustiveEdp[idx]) {
            if (edp < exhBest) {
                exhBest = edp;
                exhWinner = name;
            }
        }
        for (const auto& [name, edp] : ruleEdp[idx]) {
            if (edp < ruleBest) {
                ruleBest = edp;
                ruleWinner = name;
            }
        }
        if (ruleWinner != exhWinner)
            winnersConsistent = false;
    }
    std::cout << "Shape check: per-scenario winning strategy unchanged "
                 "under exhaustive PROV "
              << (winnersConsistent ? "[OK]" : "[MISS]")
              << " (the paper reports the same insight-preservation; "
                 "note the heterogeneity crossover sits at Sc3 in this "
                 "cost model — see EXPERIMENTS.md)\n";
    return 0;
}
