/**
 * @file
 * Figure 11 — Pareto-optimal results of the EDP search for the
 * XRBench scenarios (AR Assistant, AR Gaming, Outdoors, VR Gaming),
 * normalized by the standalone NVDLA point.
 */

#include <iostream>

#include "common/csv.h"
#include "common/table.h"
#include "bench_util.h"

using namespace scar;
using namespace scar::bench;

int
main()
{
    std::cout << "=== Figure 11: AR/VR Pareto fronts (EDP search) "
                 "===\n\n";

    CsvWriter csv(csvPath("fig11_arvr_pareto"),
                  {"scenario", "strategy", "rel_latency", "rel_energy",
                   "on_front"});

    for (int idx : {6, 7, 8, 10}) {
        const Scenario sc = suite::arvrScenario(idx);
        const Metrics base = runStrategy(standaloneNvd(), sc,
                                         OptTarget::Edp,
                                         templates::kArvrPes)
                                 .metrics;
        std::cout << "--- " << suite::scenarioLabel(idx) << " ---\n";
        TextTable table({"Strategy", "Front points", "Best rel lat",
                         "Best rel energy"});
        for (const Strategy& strategy : meshStrategies()) {
            if (strategy.standalone)
                continue;
            const RunResult r = runStrategy(strategy, sc, OptTarget::Edp,
                                            templates::kArvrPes);
            const auto front = paretoFront(r.candidates);
            double bestLat = 1e30;
            double bestE = 1e30;
            for (const Metrics& m : r.candidates) {
                bestLat = std::min(bestLat, m.latencySec);
                bestE = std::min(bestE, m.energyJ);
                const bool onFront =
                    std::find_if(front.begin(), front.end(),
                                 [&](const Metrics& f) {
                                     return f.latencySec == m.latencySec &&
                                            f.energyJ == m.energyJ;
                                 }) != front.end();
                csv.addRow({sc.name, strategy.name,
                            TextTable::num(m.latencySec / base.latencySec,
                                           4),
                            TextTable::num(m.energyJ / base.energyJ, 4),
                            onFront ? "1" : "0"});
            }
            table.addRow({strategy.name, std::to_string(front.size()),
                          TextTable::num(bestLat / base.latencySec, 3),
                          TextTable::num(bestE / base.energyJ, 3)});
        }
        std::cout << table.render() << "\n";
    }
    std::cout << "Candidate clouds written to "
              << csvPath("fig11_arvr_pareto") << "\n";
    return 0;
}
