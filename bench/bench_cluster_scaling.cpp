/**
 * @file
 * Planet-scale cluster sweep: one serving fleet of hundreds of MCM
 * shards replaying a Poisson stream of ~a million requests, swept
 * over engine threads (the parallel epoch engine draining window
 * boundaries between deterministic barriers) and over fleet sizes
 * (the hierarchical cluster -> pod -> shard routing index, O(log N)
 * candidates per dispatch).
 *
 * Three claims are measured:
 *  - Engine scaling: wall time of the identical virtual replay as
 *    engineThreads grows 1 -> 8. The virtual columns cannot move —
 *    the epoch engine is byte-deterministic — so the Speedup column
 *    isolates the host-side win.
 *  - Routing scaling: wall time per request as the shard count grows
 *    at a fixed saturating load per shard. The indexed BestFit path
 *    scores O(log N) candidates per dispatch, so the per-request
 *    cost stays near-flat where the flat O(N) scan would grow
 *    linearly.
 *  - Determinism: the serial (engineThreads = 1) and widest parallel
 *    runs render their full ServingReport to
 *    bench_results/cluster_scaling_report_{serial,parallel}.txt; the
 *    bench exits nonzero if the two differ by a byte, and CI cmp's
 *    the dumps again.
 *
 * Scale knobs (CI shrinks both): SCAR_BENCH_REQUESTS (default 1M
 * for the AR/VR mode) and SCAR_BENCH_SHARDS (default 512). The
 * full-size sweep (SCAR_BENCH_SHARDS=1024
 * SCAR_BENCH_REQUESTS=2000000) replays two million requests on a
 * thousand shards in minutes.
 *
 * SCAR_BENCH_CLUSTER_MODE selects the workload the sweep replays:
 *  - "arvr" (default): the 8-model AR/VR catalog above.
 *  - "llm": a continuous-batching chat catalog (llmPoissonTrace) —
 *    the epoch engine's join/release bound terms on the hot path.
 *  - "preempt": the AR/VR catalog with tight SLOs and boundary
 *    preemption on — the urgency bound term on the hot path.
 * Non-default modes suffix the CSV and the report dumps (e.g.
 * cluster_scaling_llm.csv, cluster_scaling_report_llm_serial.txt)
 * so one build can emit all three series side by side.
 *
 * Raw series: bench_results/cluster_scaling*.csv (columns documented
 * in bench/README.md). Every row carries the host's hardware
 * concurrency and a single-core marker: the Speedup column measures
 * host-side parallelism, so rows recorded on a 1-core host tie
 * serial by construction and must be read as determinism (not
 * performance) evidence.
 */

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/csv.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "eval/reporter.h"
#include "runtime/fleet.h"
#include "workload/model_zoo.h"
#include "workload/transformer_builder.h"

namespace
{

using namespace scar;
using namespace scar::runtime;
using Clock = std::chrono::steady_clock;

/** Eight small AR/VR-class models (hetSides3x3 has nine chiplets, so
 *  the full mix still places). Base rates total ~30 rps — slightly
 *  above one shard's ~28 rps service ceiling for this mix, so every
 *  shard stays busy without the backlog diverging; the sweep
 *  multiplies them by the shard count. */
std::vector<ServedModel>
baseCatalog()
{
    struct Entry
    {
        Model model;
        double rateRps;
        double sloSec;
    };
    const std::vector<Entry> entries = {
        {zoo::eyeCod(8), 10.0, 0.5},   {zoo::handSP(4), 6.0, 0.5},
        {zoo::sp2Dense(4), 4.5, 0.5},  {zoo::emformer(2), 2.5, 1.0},
        {zoo::hrvit(2), 1.5, 1.0},     {zoo::googleNet(4), 4.0, 1.0},
        {zoo::midas(1), 0.75, 2.0},    {zoo::d2go(1), 0.75, 2.0}};
    std::vector<ServedModel> catalog;
    for (const Entry& e : entries) {
        ServedModel sm;
        sm.model = e.model;
        sm.rateRps = e.rateRps;
        sm.sloSec = e.sloSec;
        catalog.push_back(std::move(sm));
    }
    return catalog;
}

/** Chat-style continuous-batching catalog for the "llm" mode: one
 *  small decoder whose per-request cost is a prefill plus a handful
 *  of decode rounds, so the join/release epoch bound terms sit on
 *  the hot path of every shard. */
std::vector<ServedModel>
llmBaseCatalog()
{
    TransformerConfig cfg;
    cfg.name = "chat";
    cfg.numBlocks = 2;
    cfg.dModel = 128;
    cfg.dFf = 256;
    cfg.vocab = 0;
    std::vector<ServedModel> catalog(1);
    catalog[0].model = buildTransformer(cfg);
    catalog[0].model.batch = 8;
    catalog[0].rateRps = 30.0;
    catalog[0].sloSec = 2.0;
    catalog[0].llm.autoregressive = true;
    catalog[0].llm.decoder = cfg;
    catalog[0].llm.promptBucket = 64;
    catalog[0].llm.contextBucket = 256;
    catalog[0].llm.maxDecodeSteps = 32;
    catalog[0].llm.meanOutputTokens = 24.0;
    catalog[0].llm.maxOutputTokens = 96;
    catalog[0].llm.maxPromptTokens = 128;
    return catalog;
}

/** Workload variant selected by SCAR_BENCH_CLUSTER_MODE. */
struct ClusterMode
{
    std::string name = "arvr";
    bool llm = false;
    bool preempt = false;

    /** "" for the default mode, "_llm" / "_preempt" otherwise, so
     *  the default artifacts keep their established paths. */
    std::string suffix() const
    {
        return name == "arvr" ? std::string() : "_" + name;
    }
};

std::vector<ServedModel>
scaledCatalog(const ClusterMode& mode, double rateScale)
{
    std::vector<ServedModel> catalog =
        mode.llm ? llmBaseCatalog() : baseCatalog();
    for (ServedModel& sm : catalog) {
        sm.rateRps *= rateScale;
        // Tight SLOs put the urgency crossing ahead of replay ends
        // so the preempt sweep actually preempts.
        if (mode.preempt)
            sm.sloSec *= 0.2;
    }
    return catalog;
}

std::vector<Request>
modeTrace(const ClusterMode& mode,
          const std::vector<ServedModel>& catalog, int requests)
{
    return mode.llm ? llmPoissonTrace(catalog, requests, /*seed=*/7)
                    : poissonTrace(catalog, requests, /*seed=*/7);
}

struct CellResult
{
    ServingReport report;
    double wallMs = 0.0;
    std::string rendered;
};

CellResult
runCell(const ClusterMode& mode,
        const std::vector<ServedModel>& catalog,
        const std::vector<Request>& trace, int shards,
        int engineThreads, ThreadPool& servingPool)
{
    FleetOptions options;
    options.shards = shards;
    options.routing = RoutingPolicy::BestFit;
    options.engineThreads = engineThreads;
    options.serving.pool = &servingPool;
    options.serving.modeledSolveSec = 0.01;
    options.serving.switchOverheadSec = 0.002;
    options.serving.admission.maxQueueDelaySec = 0.02;
    if (mode.llm)
        options.serving.admission.llmBatching =
            LlmBatchingMode::Continuous;
    if (mode.preempt) {
        options.serving.preemption.enabled = true;
        options.serving.preemption.slackThresholdSec = 0.02;
    }
    FleetSimulator fleet(catalog, templates::hetSides3x3(templates::kArvrPes),
                         options);

    CellResult cell;
    const auto t0 = Clock::now();
    cell.report = fleet.run(trace);
    cell.wallMs =
        std::chrono::duration<double, std::milli>(Clock::now() - t0)
            .count();
    // Pin the reporter's engineThreads render gate so the
    // serial-vs-parallel dump comparison also covers the epoch
    // statistics (identical at every thread count by contract).
    ServingReport normalized = cell.report;
    normalized.engineThreads = 8;
    cell.rendered = describeServingReport(normalized);
    return cell;
}

bool
writeText(const std::string& path, const std::string& text)
{
    std::ofstream out(path);
    out << text;
    return static_cast<bool>(out);
}

} // namespace

int
main()
{
    ClusterMode mode;
    mode.name = bench::envStr("SCAR_BENCH_CLUSTER_MODE", "arvr");
    mode.llm = mode.name == "llm";
    mode.preempt = mode.name == "preempt";
    if (!mode.llm && !mode.preempt && mode.name != "arvr") {
        std::cerr << "unknown SCAR_BENCH_CLUSTER_MODE '" << mode.name
                  << "' (expected arvr | llm | preempt)\n";
        return 1;
    }
    // LLM requests cost a prefill plus several decode rounds each, so
    // the default stream is an order of magnitude shorter.
    const int kRequests = bench::envInt(
        "SCAR_BENCH_REQUESTS", mode.llm ? 100000 : 1000000);
    const int kShards =
        bench::envInt("SCAR_BENCH_SHARDS", mode.llm ? 64 : 512);

    // The Speedup column only moves with physical parallelism; the
    // marker keeps 1-core rows (every thread count ties serial)
    // honest in aggregated CSVs.
    const unsigned hostConcurrency =
        std::thread::hardware_concurrency();
    const bool singleCoreHost = hostConcurrency <= 1;

    ThreadPool servingPool(0); // solver workers, default concurrency

    TextTable table({"Sweep", "Shards", "Eng thr", "Wall (ms)",
                     "Speedup", "Events/s", "Virt req/s", "p99 (s)",
                     "Solves"});
    CsvWriter csv(bench::csvPath("cluster_scaling" + mode.suffix()),
                  {"sweep", "shards", "engine_threads", "requests",
                   "wall_ms", "speedup", "events_per_s",
                   "virt_throughput_rps", "p99_s", "slo_miss_rate",
                   "searches", "contested_routes",
                   "cost_optimal_routes", "host_hw_concurrency",
                   "single_core_host"});

    auto addRow = [&](const char* sweep, int shards, int threads,
                      const CellResult& cell, double speedup,
                      long requests) {
        // Committed boundary ticks are not exported; completed
        // requests + dispatches + arrivals is the event-count proxy
        // every cell shares, so the columns compare fairly.
        const double events = static_cast<double>(requests) +
                              cell.report.completed +
                              cell.report.dispatches;
        const double eventsPerS = events / (cell.wallMs / 1000.0);
        table.addRow({sweep, std::to_string(shards),
                      std::to_string(threads),
                      TextTable::num(cell.wallMs, 0),
                      TextTable::num(speedup, 2) + "x",
                      TextTable::num(eventsPerS, 0),
                      TextTable::num(cell.report.throughputRps, 0),
                      TextTable::num(cell.report.p99LatencySec, 3),
                      std::to_string(cell.report.cache.misses)});
        csv.addRow({sweep, std::to_string(shards),
                    std::to_string(threads), std::to_string(requests),
                    TextTable::num(cell.wallMs, 3),
                    TextTable::num(speedup, 4),
                    TextTable::num(eventsPerS, 1),
                    TextTable::num(cell.report.throughputRps, 3),
                    TextTable::num(cell.report.p99LatencySec, 6),
                    TextTable::num(cell.report.sloViolationRate, 6),
                    std::to_string(cell.report.cache.misses),
                    std::to_string(cell.report.contestedRoutes),
                    std::to_string(cell.report.costOptimalRoutes),
                    std::to_string(hostConcurrency),
                    singleCoreHost ? "1" : "0"});
    };

    // ---- engine-thread sweep at full fleet size ------------------
    const auto catalog =
        scaledCatalog(mode, static_cast<double>(kShards));
    const std::vector<Request> trace =
        modeTrace(mode, catalog, kRequests);

    std::string serialReport;
    std::string parallelReport;
    double serialWallMs = 0.0;
    for (const int threads : {1, 2, 4, 8}) {
        const CellResult cell = runCell(mode, catalog, trace,
                                        kShards, threads,
                                        servingPool);
        if (threads == 1) {
            serialWallMs = cell.wallMs;
            serialReport = cell.rendered;
        }
        if (threads == 8)
            parallelReport = cell.rendered;
        addRow("engine", kShards, threads, cell,
               serialWallMs / cell.wallMs, kRequests);
    }

    // ---- shard sweep at 8 engine threads -------------------------
    // Constant load per shard: the stream grows with the fleet, so a
    // flat wall-per-request column demonstrates O(log N) routing.
    double shardBaseWallPerReq = 0.0;
    for (int shards = std::max(kShards / 8, 8); shards <= kShards;
         shards *= 2) {
        const int requests =
            static_cast<int>(static_cast<long>(kRequests) * shards /
                             kShards);
        const auto cat =
            scaledCatalog(mode, static_cast<double>(shards));
        const auto tr = modeTrace(mode, cat, requests);
        const CellResult cell =
            runCell(mode, cat, tr, shards, 8, servingPool);
        const double wallPerReq = cell.wallMs / requests;
        if (shardBaseWallPerReq == 0.0)
            shardBaseWallPerReq = wallPerReq;
        addRow("shards", shards, 8, cell,
               shardBaseWallPerReq / wallPerReq, requests);
    }

    std::cout << "Cluster scaling sweep (" << mode.name
              << " mode): " << kRequests << " Poisson requests over "
              << kShards << " shards ("
              << (mode.llm ? "continuous-batching chat catalog"
                           : "8-model AR/VR catalog")
              << (mode.preempt ? ", boundary preemption on" : "")
              << ",\nBestFit routing, shared striped cache, modeled "
                 "solve 0.01 s, switch overhead 0.002 s)\n"
              << "Host concurrency: " << hostConcurrency
              << (singleCoreHost ? " (SINGLE-CORE HOST: " : " (")
              << "engine speedup is bounded by physical cores; on "
                 "a 1-core host every row ties serial)\n\n";
    std::cout << table.render();
    std::cout << "\nEngine rows replay the identical virtual stream; "
                 "Speedup is serial wall / row wall.\nShard rows "
                 "scale the stream with the fleet; Speedup is "
                 "base wall-per-request / row's\n(flat = O(log N) "
                 "routing). Virtual columns never move across engine "
                 "threads.\n";
    std::cout << "\nCSV: "
              << bench::csvPath("cluster_scaling" + mode.suffix())
              << "\n";

    // ---- determinism gate ----------------------------------------
    // csvPath() above already created bench_results/.
    const std::string serialPath =
        "bench_results/cluster_scaling_report" + mode.suffix() +
        "_serial.txt";
    const std::string parallelPath =
        "bench_results/cluster_scaling_report" + mode.suffix() +
        "_parallel.txt";
    if (!writeText(serialPath, serialReport) ||
        !writeText(parallelPath, parallelReport)) {
        std::cerr << "FAILED to write report dumps\n";
        return 1;
    }
    if (serialReport != parallelReport) {
        std::cerr << "DETERMINISM VIOLATION: serial and 8-thread "
                     "reports differ (see "
                  << serialPath << " vs " << parallelPath << ")\n";
        return 1;
    }
    std::cout << "\nDeterminism: serial and 8-thread reports are "
                 "byte-identical (" << serialPath << ")\n";
    return 0;
}
