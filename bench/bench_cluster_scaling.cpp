/**
 * @file
 * Planet-scale cluster sweep: one serving fleet of hundreds of MCM
 * shards replaying a Poisson stream of ~a million requests, swept
 * over engine threads (the parallel epoch engine draining window
 * boundaries between deterministic barriers) and over fleet sizes
 * (the hierarchical cluster -> pod -> shard routing index, O(log N)
 * candidates per dispatch).
 *
 * Three claims are measured:
 *  - Engine scaling: wall time of the identical virtual replay as
 *    engineThreads grows 1 -> 8. The virtual columns cannot move —
 *    the epoch engine is byte-deterministic — so the Speedup column
 *    isolates the host-side win.
 *  - Routing scaling: wall time per request as the shard count grows
 *    at a fixed saturating load per shard. The indexed BestFit path
 *    scores O(log N) candidates per dispatch, so the per-request
 *    cost stays near-flat where the flat O(N) scan would grow
 *    linearly.
 *  - Determinism: the serial (engineThreads = 1) and widest parallel
 *    runs render their full ServingReport to
 *    bench_results/cluster_scaling_report_{serial,parallel}.txt; the
 *    bench exits nonzero if the two differ by a byte, and CI cmp's
 *    the dumps again.
 *
 * Scale knobs (CI shrinks both): SCAR_BENCH_REQUESTS (default 1M)
 * and SCAR_BENCH_SHARDS (default 512). The full-size sweep
 * (SCAR_BENCH_SHARDS=1024 SCAR_BENCH_REQUESTS=2000000) replays two
 * million requests on a thousand shards in minutes.
 *
 * Raw series: bench_results/cluster_scaling.csv (columns documented
 * in bench/README.md).
 */

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/csv.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "eval/reporter.h"
#include "runtime/fleet.h"
#include "workload/model_zoo.h"

namespace
{

using namespace scar;
using namespace scar::runtime;
using Clock = std::chrono::steady_clock;

/** Eight small AR/VR-class models (hetSides3x3 has nine chiplets, so
 *  the full mix still places). Base rates total ~30 rps — slightly
 *  above one shard's ~28 rps service ceiling for this mix, so every
 *  shard stays busy without the backlog diverging; the sweep
 *  multiplies them by the shard count. */
std::vector<ServedModel>
baseCatalog()
{
    struct Entry
    {
        Model model;
        double rateRps;
        double sloSec;
    };
    const std::vector<Entry> entries = {
        {zoo::eyeCod(8), 10.0, 0.5},   {zoo::handSP(4), 6.0, 0.5},
        {zoo::sp2Dense(4), 4.5, 0.5},  {zoo::emformer(2), 2.5, 1.0},
        {zoo::hrvit(2), 1.5, 1.0},     {zoo::googleNet(4), 4.0, 1.0},
        {zoo::midas(1), 0.75, 2.0},    {zoo::d2go(1), 0.75, 2.0}};
    std::vector<ServedModel> catalog;
    for (const Entry& e : entries) {
        ServedModel sm;
        sm.model = e.model;
        sm.rateRps = e.rateRps;
        sm.sloSec = e.sloSec;
        catalog.push_back(std::move(sm));
    }
    return catalog;
}

std::vector<ServedModel>
scaledCatalog(double rateScale)
{
    std::vector<ServedModel> catalog = baseCatalog();
    for (ServedModel& sm : catalog)
        sm.rateRps *= rateScale;
    return catalog;
}

struct CellResult
{
    ServingReport report;
    double wallMs = 0.0;
    std::string rendered;
};

CellResult
runCell(const std::vector<ServedModel>& catalog,
        const std::vector<Request>& trace, int shards,
        int engineThreads, ThreadPool& servingPool)
{
    FleetOptions options;
    options.shards = shards;
    options.routing = RoutingPolicy::BestFit;
    options.engineThreads = engineThreads;
    options.serving.pool = &servingPool;
    options.serving.modeledSolveSec = 0.01;
    options.serving.switchOverheadSec = 0.002;
    options.serving.admission.maxQueueDelaySec = 0.02;
    FleetSimulator fleet(catalog, templates::hetSides3x3(templates::kArvrPes),
                         options);

    CellResult cell;
    const auto t0 = Clock::now();
    cell.report = fleet.run(trace);
    cell.wallMs =
        std::chrono::duration<double, std::milli>(Clock::now() - t0)
            .count();
    cell.rendered = describeServingReport(cell.report);
    return cell;
}

bool
writeText(const std::string& path, const std::string& text)
{
    std::ofstream out(path);
    out << text;
    return static_cast<bool>(out);
}

} // namespace

int
main()
{
    const int kRequests = bench::envInt("SCAR_BENCH_REQUESTS", 1000000);
    const int kShards = bench::envInt("SCAR_BENCH_SHARDS", 512);

    ThreadPool servingPool(0); // solver workers, default concurrency

    TextTable table({"Sweep", "Shards", "Eng thr", "Wall (ms)",
                     "Speedup", "Events/s", "Virt req/s", "p99 (s)",
                     "Solves"});
    CsvWriter csv(bench::csvPath("cluster_scaling"),
                  {"sweep", "shards", "engine_threads", "requests",
                   "wall_ms", "speedup", "events_per_s",
                   "virt_throughput_rps", "p99_s", "slo_miss_rate",
                   "searches", "contested_routes",
                   "cost_optimal_routes"});

    auto addRow = [&](const char* sweep, int shards, int threads,
                      const CellResult& cell, double speedup,
                      long requests) {
        // Committed boundary ticks are not exported; completed
        // requests + dispatches + arrivals is the event-count proxy
        // every cell shares, so the columns compare fairly.
        const double events = static_cast<double>(requests) +
                              cell.report.completed +
                              cell.report.dispatches;
        const double eventsPerS = events / (cell.wallMs / 1000.0);
        table.addRow({sweep, std::to_string(shards),
                      std::to_string(threads),
                      TextTable::num(cell.wallMs, 0),
                      TextTable::num(speedup, 2) + "x",
                      TextTable::num(eventsPerS, 0),
                      TextTable::num(cell.report.throughputRps, 0),
                      TextTable::num(cell.report.p99LatencySec, 3),
                      std::to_string(cell.report.cache.misses)});
        csv.addRow({sweep, std::to_string(shards),
                    std::to_string(threads), std::to_string(requests),
                    TextTable::num(cell.wallMs, 3),
                    TextTable::num(speedup, 4),
                    TextTable::num(eventsPerS, 1),
                    TextTable::num(cell.report.throughputRps, 3),
                    TextTable::num(cell.report.p99LatencySec, 6),
                    TextTable::num(cell.report.sloViolationRate, 6),
                    std::to_string(cell.report.cache.misses),
                    std::to_string(cell.report.contestedRoutes),
                    std::to_string(cell.report.costOptimalRoutes)});
    };

    // ---- engine-thread sweep at full fleet size ------------------
    const auto catalog =
        scaledCatalog(static_cast<double>(kShards));
    const std::vector<Request> trace =
        poissonTrace(catalog, kRequests, /*seed=*/7);

    std::string serialReport;
    std::string parallelReport;
    double serialWallMs = 0.0;
    for (const int threads : {1, 2, 4, 8}) {
        const CellResult cell =
            runCell(catalog, trace, kShards, threads, servingPool);
        if (threads == 1) {
            serialWallMs = cell.wallMs;
            serialReport = cell.rendered;
        }
        if (threads == 8)
            parallelReport = cell.rendered;
        addRow("engine", kShards, threads, cell,
               serialWallMs / cell.wallMs, kRequests);
    }

    // ---- shard sweep at 8 engine threads -------------------------
    // Constant load per shard: the stream grows with the fleet, so a
    // flat wall-per-request column demonstrates O(log N) routing.
    double shardBaseWallPerReq = 0.0;
    for (int shards = std::max(kShards / 8, 8); shards <= kShards;
         shards *= 2) {
        const int requests =
            static_cast<int>(static_cast<long>(kRequests) * shards /
                             kShards);
        const auto cat = scaledCatalog(static_cast<double>(shards));
        const auto tr = poissonTrace(cat, requests, /*seed=*/7);
        const CellResult cell =
            runCell(cat, tr, shards, 8, servingPool);
        const double wallPerReq = cell.wallMs / requests;
        if (shardBaseWallPerReq == 0.0)
            shardBaseWallPerReq = wallPerReq;
        addRow("shards", shards, 8, cell,
               shardBaseWallPerReq / wallPerReq, requests);
    }

    std::cout << "Cluster scaling sweep: " << kRequests
              << " Poisson requests over " << kShards
              << " shards (8-model AR/VR catalog, BestFit routing,\n"
                 "shared striped cache, modeled solve 0.01 s, switch "
                 "overhead 0.002 s)\n"
              << "Host concurrency: "
              << std::thread::hardware_concurrency()
              << " (engine speedup is bounded by physical cores; on "
                 "a 1-core host every row ties serial)\n\n";
    std::cout << table.render();
    std::cout << "\nEngine rows replay the identical virtual stream; "
                 "Speedup is serial wall / row wall.\nShard rows "
                 "scale the stream with the fleet; Speedup is "
                 "base wall-per-request / row's\n(flat = O(log N) "
                 "routing). Virtual columns never move across engine "
                 "threads.\n";
    std::cout << "\nCSV: " << bench::csvPath("cluster_scaling")
              << "\n";

    // ---- determinism gate ----------------------------------------
    // csvPath() above already created bench_results/.
    const std::string serialPath =
        "bench_results/cluster_scaling_report_serial.txt";
    const std::string parallelPath =
        "bench_results/cluster_scaling_report_parallel.txt";
    if (!writeText(serialPath, serialReport) ||
        !writeText(parallelPath, parallelReport)) {
        std::cerr << "FAILED to write report dumps\n";
        return 1;
    }
    if (serialReport != parallelReport) {
        std::cerr << "DETERMINISM VIOLATION: serial and 8-thread "
                     "reports differ (see "
                  << serialPath << " vs " << parallelPath << ")\n";
        return 1;
    }
    std::cout << "\nDeterminism: serial and 8-thread reports are "
                 "byte-identical (" << serialPath << ")\n";
    return 0;
}
