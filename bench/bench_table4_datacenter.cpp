/**
 * @file
 * Table IV + Figure 7 — the full datacenter evaluation on the 3x3 MCM
 * templates: for each search objective, the end-to-end latency and EDP
 * of the top-scoring schedule per (strategy, scenario) cell, plus the
 * Figure 7 series normalized by the standalone NVDLA baseline.
 *
 * Paper shape targets (EDP search): scenarios 1-3 favor Simba (NVD)
 * and the standalone NVDLA; scenarios 4-5 favor Het-Sides (46.02% /
 * 25.18% less EDP than Simba (NVD)).
 */

#include <iostream>
#include <map>

#include "common/csv.h"
#include "common/table.h"
#include "bench_util.h"

using namespace scar;
using namespace scar::bench;

int
main()
{
    std::cout << "=== Table IV / Figure 7: datacenter scenarios on 3x3 "
                 "MCMs ===\n\n";

    const auto strategies = meshStrategies();
    const std::vector<OptTarget> searches{
        OptTarget::Latency, OptTarget::Energy, OptTarget::Edp};

    // results[target][strategy][scenario]
    std::map<OptTarget, std::map<std::string, std::vector<Metrics>>> all;
    std::vector<Scenario> scenarios;
    for (int idx = 1; idx <= 5; ++idx)
        scenarios.push_back(suite::datacenterScenario(idx));

    CsvWriter csv(csvPath("table4_datacenter"),
                  {"search", "strategy", "scenario", "latency_s",
                   "energy_j", "edp_js"});

    for (OptTarget target : searches) {
        for (const Strategy& strategy : strategies) {
            auto& row = all[target][strategy.name];
            for (const Scenario& sc : scenarios) {
                const RunResult r = runStrategy(
                    strategy, sc, target, templates::kDatacenterPes);
                row.push_back(r.metrics);
                csv.addRow({optTargetName(target), strategy.name,
                            sc.name, TextTable::num(r.metrics.latencySec, 6),
                            TextTable::num(r.metrics.energyJ, 6),
                            TextTable::num(r.metrics.edp(), 6)});
            }
        }
    }

    // ---- Table IV: latency & EDP under Latency and EDP search. ----
    for (OptTarget target : {OptTarget::Latency, OptTarget::Edp}) {
        std::cout << "--- " << optTargetName(target) << " search ---\n";
        TextTable table({"Strategy", "Sc1 Lat", "Sc2 Lat", "Sc3 Lat",
                         "Sc4 Lat", "Sc5 Lat", "Sc1 EDP", "Sc2 EDP",
                         "Sc3 EDP", "Sc4 EDP", "Sc5 EDP"});
        for (const Strategy& strategy : strategies) {
            std::vector<std::string> row{strategy.name};
            const auto& metrics = all[target][strategy.name];
            for (const Metrics& m : metrics)
                row.push_back(TextTable::num(m.latencySec, 3));
            for (const Metrics& m : metrics)
                row.push_back(TextTable::num(m.edp(), 3));
            table.addRow(std::move(row));
        }
        std::cout << table.render() << "\n";
    }

    // ---- Figure 7: all metrics normalized by Standalone (NVD). ----
    std::cout << "--- Figure 7: normalized by Standalone (NVD) ---\n";
    for (OptTarget target : searches) {
        std::cout << optTargetName(target) << " search:\n";
        TextTable table({"Strategy", "Metric", "Sc1", "Sc2", "Sc3",
                         "Sc4", "Sc5"});
        const auto& base = all[target]["Stand.(NVD)"];
        for (const Strategy& strategy : strategies) {
            if (strategy.standalone && strategy.name == "Stand.(NVD)")
                continue;
            const auto& metrics = all[target][strategy.name];
            std::vector<std::string> lat{strategy.name, "latency"};
            std::vector<std::string> nrg{strategy.name, "energy"};
            std::vector<std::string> edp{strategy.name, "EDP"};
            for (std::size_t i = 0; i < metrics.size(); ++i) {
                lat.push_back(TextTable::num(
                    metrics[i].latencySec / base[i].latencySec, 2));
                nrg.push_back(TextTable::num(
                    metrics[i].energyJ / base[i].energyJ, 2));
                edp.push_back(TextTable::num(
                    metrics[i].edp() / base[i].edp(), 2));
            }
            table.addRow(std::move(lat));
            table.addRow(std::move(nrg));
            table.addRow(std::move(edp));
            table.addSeparator();
        }
        std::cout << table.render() << "\n";
    }

    // ---- Headline shape checks. ----
    const auto& edpSearch = all[OptTarget::Edp];
    const auto edpOf = [&](const std::string& name, int sc) {
        return edpSearch.at(name)[sc].edp();
    };
    const bool homoWinsLight =
        edpOf("Simba (NVD)", 0) <= edpOf("Het-Sides", 0) * 1.05;
    // The crossover where heterogeneity starts winning: the paper
    // places it at Sc4-5; under MaestroLite's idealized
    // weight-stationary mapping it lands at Sc3 (see EXPERIMENTS.md).
    int crossover = -1;
    for (int sc = 0; sc < 5; ++sc) {
        if (edpOf("Het-Sides", sc) < edpOf("Simba (NVD)", sc) &&
            edpOf("Het-Sides", sc) < edpOf("Stand.(NVD)", sc)) {
            crossover = sc + 1;
            break;
        }
    }
    const bool hetBeatsStandaloneHeavy =
        edpOf("Het-Sides", 3) < edpOf("Stand.(NVD)", 3) &&
        edpOf("Het-Sides", 4) < edpOf("Stand.(NVD)", 4);
    const bool sidesBeatsCb =
        edpOf("Het-Sides", 3) < edpOf("Het-CB", 3) &&
        edpOf("Het-Sides", 4) < edpOf("Het-CB", 4);
    std::cout << "Shape checks:\n";
    std::cout << "  homogeneous NVD competitive on the light LLM "
                 "scenario 1 "
              << (homoWinsLight ? "[OK]" : "[MISS]") << "\n";
    std::cout << "  heterogeneity crossover exists (paper: Sc4; here: "
              << (crossover > 0 ? "Sc" + std::to_string(crossover)
                                : "none")
              << ") " << (crossover > 0 ? "[OK]" : "[MISS]") << "\n";
    std::cout << "  Het-Sides beats standalone NVD on heavy Sc4-5 "
              << (hetBeatsStandaloneHeavy ? "[OK]" : "[MISS]")
              << " (paper: 1.7x / 1.25x better)\n";
    std::cout << "  Het-Sides superior to Het-CB on heavy scenarios "
              << (sidesBeatsCb ? "[OK]" : "[MISS]")
              << " (paper Section V-B insight)\n";
    return 0;
}
