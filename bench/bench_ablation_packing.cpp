/**
 * @file
 * Section V-E ablation 4 — greedy first-fit layer packing vs a
 * uniform layer distribution across windows (Scenario 4, Het-Sides,
 * EDP search).
 *
 * Paper shape target: the greedy packing achieves ~21.8% speedup and
 * ~8.6% energy reduction over the uniform baseline.
 */

#include <iostream>

#include "common/csv.h"
#include "common/table.h"
#include "bench_util.h"

using namespace scar;
using namespace scar::bench;

int
main()
{
    std::cout << "=== Ablation: greedy vs uniform layer packing "
                 "(Scenario 4, Het-Sides, EDP search) ===\n\n";

    const Scenario sc = suite::datacenterScenario(4);
    auto runWith = [&](PackingPolicy policy) {
        ScarOptions opts;
        opts.packing = policy;
        opts.target = OptTarget::Edp;
        Scar scar(sc, templates::hetSides3x3(), opts);
        return scar.run().metrics;
    };

    const Metrics greedy = runWith(PackingPolicy::GreedyFirstFit);
    const Metrics uniform = runWith(PackingPolicy::Uniform);

    TextTable table({"Packing", "Latency (s)", "Energy (J)",
                     "EDP (J*s)"});
    table.addRow({"Greedy first-fit (Alg. 1)",
                  TextTable::num(greedy.latencySec, 3),
                  TextTable::num(greedy.energyJ, 3),
                  TextTable::num(greedy.edp(), 3)});
    table.addRow({"Uniform", TextTable::num(uniform.latencySec, 3),
                  TextTable::num(uniform.energyJ, 3),
                  TextTable::num(uniform.edp(), 3)});
    std::cout << table.render() << "\n";

    const double speedup =
        100.0 * (1.0 - greedy.latencySec / uniform.latencySec);
    const double energySave =
        100.0 * (1.0 - greedy.energyJ / uniform.energyJ);
    std::cout << "Greedy speedup: " << TextTable::num(speedup, 1)
              << "% (paper 21.8%); energy reduction: "
              << TextTable::num(energySave, 1) << "% (paper 8.6%)\n";
    std::cout << "Shape check: greedy packing competitive with uniform "
                 "(within 20%) "
              << (greedy.edp() <= uniform.edp() * 1.2 ? "[OK]"
                                                      : "[MISS]")
              << "\n"
              << "Note: the paper's Eq. 1 expectation weights layer "
                 "costs by the dataflow-class mix; with MaestroLite "
                 "costs and capacity mini-batching the expectation "
                 "skews window balance for LLM-heavy scenarios, so "
                 "the greedy advantage over uniform does not "
                 "reproduce (see EXPERIMENTS.md).\n";

    CsvWriter csv(csvPath("ablation_packing"),
                  {"packing", "latency_s", "energy_j", "edp_js"});
    csv.addRow({"greedy", TextTable::num(greedy.latencySec, 6),
                TextTable::num(greedy.energyJ, 6),
                TextTable::num(greedy.edp(), 6)});
    csv.addRow({"uniform", TextTable::num(uniform.latencySec, 6),
                TextTable::num(uniform.energyJ, 6),
                TextTable::num(uniform.edp(), 6)});
    return 0;
}
