/**
 * @file
 * Boundary-preemption sweep: on a mixed datacenter + AR/VR stream,
 * how much XR SLO-miss rate does request-level preemption buy, at
 * which slack threshold, and what does the preempted datacenter
 * traffic pay?
 *
 * SCAR's AR/VR scenarios carry frame deadlines an order of magnitude
 * tighter than datacenter SLOs (paper Table 5): a 20 fps frame
 * request that lands just after a 5-window BERT replay begins waits
 * out the remaining ~86 ms makespan and blows its 50 ms deadline. A
 * schedule's window boundaries are the natural cut points
 * (sched/scar.h WindowBoundary): with preemption enabled the replay
 * is suspended at its next boundary, the urgent XR batch runs, and
 * the suspended replay resumes from its cursor — charged a modeled
 * re-staging overhead, never re-solved.
 *
 * Traffic on one Het-Sides 3x3 package:
 *  - datacenter: BERT-Large batch-8 jobs arriving as Poisson bursts
 *    (8 requests at once — the batched-analytics pattern that forms
 *    full, long-replay dispatches), 500 ms interactive SLO;
 *  - AR/VR: GoogLeNet + EyeCOD Poisson frame streams at 20 fps frame
 *    deadlines (50 ms).
 *
 * Rows: preemption off, then a sweep of the slack threshold. Too
 * small a threshold fires urgency later than the boundary + replay
 * time it still needs, so frames keep missing; larger thresholds
 * rescue the frames at a modest datacenter-tail cost (the preempted
 * batches finish later by one XR replay + resume overhead per
 * suspension).
 *
 * Acceptance (exit code, full-size runs only): the best enabled
 * threshold posts a strictly lower mean XR SLO-miss rate than
 * preemption-off, without collapsing datacenter service — datacenter
 * miss rate within 5 percentage points and virtual throughput within
 * 10% of the off row.
 *
 * Env knobs (bench-smoke CI runs a tiny configuration):
 *  - SCAR_BENCH_PREEMPT_SEC: trace duration in seconds (default 4)
 *
 * Raw series: bench_results/preemption.csv (columns documented in
 * bench/README.md).
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "bench_util.h"
#include "common/csv.h"
#include "common/rng.h"
#include "common/table.h"
#include "runtime/fleet.h"
#include "workload/model_zoo.h"

namespace
{

using namespace scar;
using namespace scar::runtime;

/**
 * Mixed trace: model 0 arrives as Poisson *bursts* of its full batch
 * (burst rate in bursts/s — each burst forms one long dispatch), the
 * other models as plain Poisson streams at their rateRps.
 * Deterministic in (catalog, burstRate, durationSec, seed).
 */
std::vector<Request>
mixedTrace(const std::vector<ServedModel>& catalog, double burstRate,
           double durationSec, std::uint64_t seed)
{
    std::vector<std::pair<double, int>> arrivals;
    Rng rng(seed);
    for (double t = 0.0;;) {
        t += -std::log(1.0 - rng.uniform()) / burstRate;
        if (t >= durationSec)
            break;
        for (int i = 0; i < catalog[0].model.batch; ++i)
            arrivals.push_back({t, 0});
    }
    for (std::size_t m = 1; m < catalog.size(); ++m) {
        for (double t = 0.0;;) {
            t += -std::log(1.0 - rng.uniform()) / catalog[m].rateRps;
            if (t >= durationSec)
                break;
            arrivals.push_back({t, static_cast<int>(m)});
        }
    }
    std::sort(arrivals.begin(), arrivals.end());
    return traceFromArrivals(catalog, std::move(arrivals));
}

/** Per-class SLO-miss rate and p99 from completion records. */
struct ClassStats
{
    long completed = 0;
    long violations = 0;
    double p99Sec = 0.0;

    double
    missRate() const
    {
        return completed > 0
                   ? static_cast<double>(violations) / completed
                   : 0.0;
    }
};

ClassStats
classStats(const std::vector<Request>& records, bool xr)
{
    ClassStats stats;
    std::vector<double> latencies;
    for (const Request& req : records) {
        if (!req.completed() || (req.modelIdx >= 1) != xr)
            continue;
        ++stats.completed;
        if (req.sloViolated())
            ++stats.violations;
        latencies.push_back(req.latencySec());
    }
    stats.p99Sec = percentileSec(std::move(latencies), 99.0);
    return stats;
}

} // namespace

int
main()
{
    using Clock = std::chrono::steady_clock;

    const double kDurationSec =
        bench::envDouble("SCAR_BENCH_PREEMPT_SEC", 4.0);

    // Model 0 is the datacenter class (burst arrivals, loose SLO);
    // the rest are the XR class (Poisson frames, 20 fps deadlines).
    std::vector<ServedModel> catalog(3);
    catalog[0].model = zoo::bertLarge(8);
    catalog[0].sloSec = 0.5;
    catalog[1].model = zoo::googleNet(4);
    catalog[1].rateRps = 100.0;
    catalog[1].sloSec = frameDeadlineSec(20.0);
    catalog[2].model = zoo::eyeCod(4);
    catalog[2].rateRps = 50.0;
    catalog[2].sloSec = frameDeadlineSec(20.0);
    const double kBurstRate = 4.0; // BERT jobs per second

    const std::vector<std::uint64_t> kSeeds = {7, 314, 5};
    std::vector<std::vector<Request>> traces;
    std::size_t traceRequests = 0;
    for (const std::uint64_t seed : kSeeds) {
        traces.push_back(
            mixedTrace(catalog, kBurstRate, kDurationSec, seed));
        traceRequests += traces.back().size();
    }

    struct Config
    {
        const char* label;
        bool enabled;
        double slackThresholdSec;
    };
    const std::vector<Config> configs = {
        {"off", false, 0.0},        {"thr=5ms", true, 0.005},
        {"thr=15ms", true, 0.015},  {"thr=30ms", true, 0.03},
        {"thr=45ms", true, 0.045},
    };

    TextTable table({"Preemption", "XR miss", "DC miss", "XR p99 (s)",
                     "DC p99 (s)", "Preempts", "Resumed p99 (s)",
                     "Virt req/s", "Searches", "Wall (ms)"});
    CsvWriter csv(bench::csvPath("preemption"),
                  {"config", "slack_threshold_s", "seed",
                   "xr_miss_rate", "dc_miss_rate", "xr_p99_s",
                   "dc_p99_s", "preemptions", "preempted_requests",
                   "preempted_p99_s", "resume_overhead_s",
                   "virt_throughput_rps", "searches", "wall_ms"});

    double offXrMiss = -1.0;
    double offDcMiss = -1.0;
    double offThroughput = -1.0;
    double bestXrMiss = -1.0;
    double bestDcMiss = -1.0;
    double bestThroughput = -1.0;
    for (const Config& config : configs) {
        double xrMissSum = 0.0;
        double dcMissSum = 0.0;
        double xrP99Worst = 0.0;
        double dcP99Worst = 0.0;
        double throughputSum = 0.0;
        double preemptedP99Worst = 0.0;
        double wallMsSum = 0.0;
        long preemptions = 0;
        long searches = 0;
        for (std::size_t t = 0; t < kSeeds.size(); ++t) {
            FleetOptions options;
            options.shards = 1;
            options.serving.modeledSolveSec = 0.005;
            options.serving.switchOverheadSec = 0.001;
            options.serving.admission.maxQueueDelaySec = 0.01;
            options.serving.preemption.enabled = config.enabled;
            options.serving.preemption.slackThresholdSec =
                config.slackThresholdSec;
            options.serving.preemption.resumeOverheadSec = 0.001;
            FleetSimulator fleet(catalog, templates::hetSides3x3(),
                                 options);

            const auto t0 = Clock::now();
            const ServingReport report = fleet.run(traces[t]);
            const double wallMs =
                std::chrono::duration<double, std::milli>(
                    Clock::now() - t0)
                    .count();

            const ClassStats xr = classStats(fleet.records(), true);
            const ClassStats dc = classStats(fleet.records(), false);
            xrMissSum += xr.missRate();
            dcMissSum += dc.missRate();
            xrP99Worst = std::max(xrP99Worst, xr.p99Sec);
            dcP99Worst = std::max(dcP99Worst, dc.p99Sec);
            throughputSum += report.throughputRps;
            preemptedP99Worst =
                std::max(preemptedP99Worst, report.preemptedP99Sec);
            preemptions += report.preemptions;
            searches += report.cache.misses;
            wallMsSum += wallMs;
            csv.addRow({config.label,
                        TextTable::num(config.slackThresholdSec, 3),
                        std::to_string(kSeeds[t]),
                        TextTable::num(xr.missRate(), 6),
                        TextTable::num(dc.missRate(), 6),
                        TextTable::num(xr.p99Sec, 6),
                        TextTable::num(dc.p99Sec, 6),
                        std::to_string(report.preemptions),
                        std::to_string(report.preemptedRequests),
                        TextTable::num(report.preemptedP99Sec, 6),
                        TextTable::num(report.resumeOverheadSec, 6),
                        TextTable::num(report.throughputRps, 3),
                        std::to_string(report.cache.misses),
                        TextTable::num(wallMs, 3)});
        }
        const double n = static_cast<double>(kSeeds.size());
        const double xrMiss = xrMissSum / n;
        const double dcMiss = dcMissSum / n;
        const double throughput = throughputSum / n;

        if (!config.enabled) {
            offXrMiss = xrMiss;
            offDcMiss = dcMiss;
            offThroughput = throughput;
        } else if (bestXrMiss < 0.0 || xrMiss < bestXrMiss) {
            bestXrMiss = xrMiss;
            bestDcMiss = dcMiss;
            bestThroughput = throughput;
        }

        table.addRow({config.label,
                      TextTable::num(xrMiss * 100.0, 2) + "%",
                      TextTable::num(dcMiss * 100.0, 2) + "%",
                      TextTable::num(xrP99Worst, 4),
                      TextTable::num(dcP99Worst, 4),
                      std::to_string(preemptions),
                      TextTable::num(preemptedP99Worst, 4),
                      TextTable::num(throughput, 0),
                      std::to_string(searches),
                      TextTable::num(wallMsSum, 0)});
    }

    std::cout << "Boundary preemption on a mixed datacenter+AR/VR "
                 "stream (Het-Sides 3x3, 1 package)\n"
              << traceRequests << " requests over " << kSeeds.size()
              << " traces of " << kDurationSec
              << " s (BERT-Large b8 bursts + 20 fps XR frames)\n\n";
    std::cout << table.render();
    std::cout << "\nAcceptance: best enabled XR miss "
              << TextTable::num(bestXrMiss * 100.0, 2)
              << "% vs off " << TextTable::num(offXrMiss * 100.0, 2)
              << "% -> "
              << (bestXrMiss < offXrMiss ? "PREEMPTION WINS"
                                         : "preemption loses")
              << "; DC miss " << TextTable::num(bestDcMiss * 100.0, 2)
              << "% vs " << TextTable::num(offDcMiss * 100.0, 2)
              << "%, throughput "
              << TextTable::num(bestThroughput, 0) << " vs "
              << TextTable::num(offThroughput, 0) << " req/s -> "
              << (bestDcMiss <= offDcMiss + 0.05 &&
                          bestThroughput >= 0.9 * offThroughput
                      ? "DC INTACT"
                      : "dc collapsed")
              << "\n";
    std::cout << "\nCSV: " << bench::csvPath("preemption") << "\n";

    // The verdict gates the exit code only for the full default
    // configuration; shrunken smoke runs only check that the sweep
    // executes.
    if (std::getenv("SCAR_BENCH_PREEMPT_SEC") != nullptr)
        return 0;
    return bestXrMiss < offXrMiss && bestDcMiss <= offDcMiss + 0.05 &&
                   bestThroughput >= 0.9 * offThroughput
               ? 0
               : 1;
}
