/**
 * @file
 * Communication-fidelity x interconnect sweep, with exit-code gates.
 *
 * Part 1 — schedule sweep at equal silicon: the four Het-Sides
 * interconnect variants (mesh / torus / express / broadcast plane;
 * identical chiplets, PEs, and memory-interface positions — only the
 * NoP differs) scheduled under both contention fidelities
 * (CommFidelity::Static, the paper's max-sharers count, and
 * CommFidelity::Phased, the time-phased M/D/1 queueing model) on a
 * congested datacenter scenario (Table IV row 4) and an AR/VR
 * scenario (Table V row 7).
 * Gate: torus or broadcast must beat the mesh on at least one metric
 * (latency / energy / EDP) in at least one sweep cell — richer
 * interconnects that never pay off at equal silicon would mean the
 * cost model is blind to them.
 *
 * Part 2 — fleet routing flip: a two-shard fleet of equal-silicon
 * packages with a single DRAM port (mesh vs broadcast plane) replays
 * one Poisson trace under BestFit routing with each fidelity. With
 * one port, every weight/spill route is multi-hop: the broadcast
 * variant serves them in one plane hop, so the static estimate
 * (which prices DRAM-side flows contention-free) always ranks it
 * ahead of the mesh — while the phased model aggregates all of that
 * traffic onto the single shared medium and sees the plane saturate.
 * Gate: the fidelity switch must flip at least one routing decision
 * (per-shard dispatch counts differ between the two runs).
 *
 * Part 3 — determinism: the phased fleet run repeats at 1 and 8
 * engine threads; both rendered ServingReports are dumped to
 * bench_results/comm_fidelity_report_{serial,parallel}.txt, the
 * bench exits nonzero if they differ by a byte, and CI cmp's the
 * dumps again.
 *
 * Env knobs (bench-smoke CI shrinks the run through these):
 *  - SCAR_BENCH_COMM_SCENARIOS: schedule-sweep scenarios (default 2)
 *  - SCAR_BENCH_COMM_REQUESTS: fleet trace length (default 240)
 *
 * Raw series: bench_results/comm_fidelity.csv (columns documented in
 * bench/README.md).
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/csv.h"
#include "common/table.h"
#include "cost/comm_model.h"
#include "eval/reporter.h"
#include "runtime/fleet.h"
#include "workload/model_zoo.h"

namespace
{

using namespace scar;
using namespace scar::runtime;

struct TopoVariant
{
    std::string name;
    Mcm mcm;
};

std::vector<TopoVariant>
variants(int pes)
{
    std::vector<TopoVariant> v;
    v.push_back({"mesh", templates::hetSides3x3(pes)});
    v.push_back({"torus", templates::hetSidesTorus3x3(pes)});
    v.push_back({"express", templates::hetSidesExpress3x3(pes)});
    v.push_back({"broadcast", templates::hetSidesBroadcast3x3(pes)});
    return v;
}

const char*
fidelityName(CommFidelity fidelity)
{
    return fidelity == CommFidelity::Static ? "static" : "phased";
}

/** Largest M/D/1 factor any window of the schedule applied. */
double
maxQueueFactor(const ScheduleResult& result)
{
    double worst = 1.0;
    for (const ScheduledWindow& w : result.windows)
        worst = std::max(worst, w.cost.maxQueueFactor);
    return worst;
}

/** Catalog mixing DRAM-heavy and activation-heavy AR/VR models — the
 *  traffic blend whose routing estimates the two fidelities rank
 *  differently. */
std::vector<ServedModel>
fleetCatalog()
{
    std::vector<ServedModel> catalog(3);
    catalog[0].model = zoo::eyeCod(4);
    catalog[0].rateRps = 12.0;
    catalog[0].sloSec = 0.5;
    catalog[1].model = zoo::googleNet(2);
    catalog[1].rateRps = 6.0;
    catalog[1].sloSec = 1.0;
    catalog[2].model = zoo::handSP(2);
    catalog[2].rateRps = 8.0;
    catalog[2].sloSec = 0.5;
    return catalog;
}

/**
 * Equal-silicon flip packages: Het-Sides chiplets with ONE DRAM port
 * (chiplet 0) so every weight/spill route is multi-hop, on a plain
 * mesh vs a package-wide broadcast plane. Only the interconnect
 * differs between the two.
 */
Mcm
onePortPackage(bool broadcast)
{
    std::vector<Chiplet> chiplets;
    for (int y = 0; y < 3; ++y) {
        for (int x = 0; x < 3; ++x) {
            Chiplet c;
            c.id = y * 3 + x;
            c.x = x;
            c.y = y;
            c.memInterface = (c.id == 0);
            c.spec.dataflow =
                (x == 1) ? Dataflow::ShiOS : Dataflow::NvdlaWS;
            c.spec.numPes = templates::kArvrPes;
            chiplets.push_back(c);
        }
    }
    Topology topo =
        broadcast
            ? Topology::broadcastMesh(3, 3,
                                      {0, 1, 2, 3, 4, 5, 6, 7, 8})
            : Topology::mesh(3, 3);
    return Mcm(broadcast ? "HetSides-1port-bcast" : "HetSides-1port",
               std::move(chiplets), std::move(topo));
}

ServingReport
runFleet(const std::vector<ServedModel>& catalog,
         const std::vector<Request>& trace, CommFidelity fidelity,
         int engineThreads)
{
    FleetOptions options;
    options.shardTemplates = {onePortPackage(false),
                              onePortPackage(true)};
    options.routing = RoutingPolicy::BestFit;
    options.engineThreads = engineThreads;
    options.serving.scar.window.eval.fidelity = fidelity;
    options.serving.modeledSolveSec = 0.01;
    options.serving.switchOverheadSec = 0.002;
    // The default batching delay (0.05 s) lets multi-model mixes
    // form — the mixes whose estimates the two fidelities rank
    // differently (single-model mixes tie on both shards).
    options.serving.admission.maxQueueDelaySec = 0.05;
    FleetSimulator fleet(catalog, onePortPackage(false), options);
    return fleet.run(trace);
}

bool
writeText(const std::string& path, const std::string& text)
{
    std::ofstream out(path);
    out << text;
    return static_cast<bool>(out);
}

} // namespace

int
main()
{
    const int kScenarios =
        scar::bench::envInt("SCAR_BENCH_COMM_SCENARIOS", 2);
    const int kRequests =
        scar::bench::envInt("SCAR_BENCH_COMM_REQUESTS", 240);

    // ---- Part 1: fidelity x topology schedule sweep ----------------
    struct SweepCase
    {
        std::string label;
        Scenario scenario;
        int pes;
    };
    std::vector<SweepCase> cases;
    cases.push_back({"Sc4", suite::datacenterScenario(4),
                     templates::kDatacenterPes});
    if (kScenarios > 1)
        cases.push_back(
            {"Sc7", suite::arvrScenario(7), templates::kArvrPes});

    TextTable table({"Scenario", "Topology", "Fidelity", "Lat (ms)",
                     "Energy (mJ)", "EDP", "Max qf", "Windows"});
    CsvWriter csv(scar::bench::csvPath("comm_fidelity"),
                  {"scenario", "topology", "fidelity", "latency_s",
                   "energy_j", "edp", "max_queue_factor", "windows"});

    bool exoticWins = false;
    for (const SweepCase& sweep : cases) {
        Metrics meshStatic;
        Metrics meshPhased;
        for (const TopoVariant& variant : variants(sweep.pes)) {
            for (const CommFidelity fidelity :
                 {CommFidelity::Static, CommFidelity::Phased}) {
                ScarOptions options;
                options.window.eval.fidelity = fidelity;
                Scar scar(sweep.scenario, variant.mcm, options);
                const ScheduleResult result = scar.run();
                const Metrics& m = result.metrics;
                const double qf = maxQueueFactor(result);

                table.addRow({sweep.label, variant.name,
                              fidelityName(fidelity),
                              TextTable::num(m.latencySec * 1e3, 3),
                              TextTable::num(m.energyJ * 1e3, 3),
                              TextTable::num(m.edp(), 9),
                              TextTable::num(qf, 3),
                              std::to_string(result.windows.size())});
                csv.addRow({sweep.label, variant.name,
                            fidelityName(fidelity),
                            TextTable::num(m.latencySec, 9),
                            TextTable::num(m.energyJ, 9),
                            TextTable::num(m.edp(), 12),
                            TextTable::num(qf, 6),
                            std::to_string(result.windows.size())});

                if (variant.name == "mesh") {
                    (fidelity == CommFidelity::Static ? meshStatic
                                                      : meshPhased) = m;
                } else if (variant.name == "torus" ||
                           variant.name == "broadcast") {
                    const Metrics& mesh =
                        fidelity == CommFidelity::Static ? meshStatic
                                                         : meshPhased;
                    exoticWins =
                        exoticWins || m.latencySec < mesh.latencySec ||
                        m.energyJ < mesh.energyJ ||
                        m.edp() < mesh.edp();
                }
            }
        }
    }

    std::cout << "Communication fidelity x interconnect sweep "
                 "(equal silicon: identical chiplets,\nPEs, and DRAM "
                 "ports; only the NoP differs)\n\n";
    std::cout << table.render();
    std::cout << "\nCSV: " << scar::bench::csvPath("comm_fidelity")
              << "\n";

    if (!exoticWins) {
        std::cerr << "GATE FAILED: neither torus nor broadcast beats "
                     "the mesh on any metric in any cell\n";
        return 1;
    }
    std::cout << "\nGate: torus/broadcast beats the mesh on >= 1 "
                 "metric at equal silicon — OK\n";

    // ---- Part 2: fidelity flips a BestFit routing decision ---------
    const auto catalog = fleetCatalog();
    const auto trace = poissonTrace(catalog, kRequests, /*seed=*/23);

    const ServingReport staticRun =
        runFleet(catalog, trace, CommFidelity::Static, 1);
    const ServingReport phasedRun =
        runFleet(catalog, trace, CommFidelity::Phased, 1);

    TextTable fleetTable({"Fidelity", "Shard 0 (mesh)",
                          "Shard 1 (bcast)", "p99 (s)",
                          "SLO miss"});
    auto fleetRow = [&](const char* name, const ServingReport& r) {
        fleetTable.addRow(
            {name, std::to_string(r.shards[0].dispatches),
             std::to_string(r.shards[1].dispatches),
             TextTable::num(r.p99LatencySec, 4),
             TextTable::num(r.sloViolationRate, 4)});
    };
    fleetRow("static", staticRun);
    fleetRow("phased", phasedRun);
    std::cout << "\nBestFit routing on a {mesh, broadcast} fleet ("
              << kRequests << " requests):\n\n"
              << fleetTable.render();

    const bool flipped =
        staticRun.shards[0].dispatches !=
            phasedRun.shards[0].dispatches ||
        staticRun.shards[1].dispatches !=
            phasedRun.shards[1].dispatches;
    if (!flipped) {
        std::cerr << "GATE FAILED: phased fidelity flipped no BestFit "
                     "routing decision (per-shard dispatches "
                     "identical)\n";
        return 1;
    }
    std::cout << "\nGate: phased fidelity flips >= 1 BestFit routing "
                 "decision — OK\n";

    // ---- Part 3: phased determinism across engine threads ----------
    // Pin the reporter's engineThreads render gate on both sides so
    // the byte comparison also covers the epoch statistics
    // (identical at every thread count by contract).
    const auto renderPinned = [](ServingReport report) {
        report.engineThreads = 8;
        return describeServingReport(report);
    };
    const std::string serialReport = renderPinned(phasedRun);
    const std::string parallelReport = renderPinned(
        runFleet(catalog, trace, CommFidelity::Phased, 8));

    const std::string serialPath =
        "bench_results/comm_fidelity_report_serial.txt";
    const std::string parallelPath =
        "bench_results/comm_fidelity_report_parallel.txt";
    if (!writeText(serialPath, serialReport) ||
        !writeText(parallelPath, parallelReport)) {
        std::cerr << "FAILED to write report dumps\n";
        return 1;
    }
    if (serialReport != parallelReport) {
        std::cerr << "DETERMINISM VIOLATION: serial and 8-thread "
                     "phased reports differ (see "
                  << serialPath << " vs " << parallelPath << ")\n";
        return 1;
    }
    std::cout << "\nDeterminism: serial and 8-thread phased reports "
                 "are byte-identical (" << serialPath << ")\n";
    return 0;
}
