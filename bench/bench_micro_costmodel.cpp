/**
 * @file
 * google-benchmark microbenchmarks for the cost-model substrate:
 * MaestroLite layer evaluation, cost-database construction, and
 * window evaluation throughput. These bound the scheduler's search
 * budget (every SCHED candidate costs one window evaluation).
 */

#include <benchmark/benchmark.h>

#include "arch/mcm_templates.h"
#include "micro_bench_main.h"
#include "cost/cost_db.h"
#include "cost/window_evaluator.h"
#include "eval/scenario_suite.h"
#include "workload/model_zoo.h"
#include "workload/transformer_builder.h"

using namespace scar;

namespace
{

void
BM_MaestroLiteConv(benchmark::State& state)
{
    const MaestroLite model;
    ChipletSpec spec;
    spec.dataflow = state.range(0) == 0 ? Dataflow::NvdlaWS
                                        : Dataflow::ShiOS;
    Layer conv;
    conv.type = OpType::Conv2D;
    conv.dims = LayerDims{256, 128, 3, 3, 56, 56, 1, 1};
    for (auto _ : state) {
        benchmark::DoNotOptimize(model.evalLayer(conv, spec));
    }
}
BENCHMARK(BM_MaestroLiteConv)->Arg(0)->Arg(1);

void
BM_MaestroLiteGemm(benchmark::State& state)
{
    const MaestroLite model;
    ChipletSpec spec;
    spec.dataflow = state.range(0) == 0 ? Dataflow::NvdlaWS
                                        : Dataflow::ShiOS;
    const Layer gemm = makeGemmLayer(0, "g", 128, 5120, 1280);
    for (auto _ : state) {
        benchmark::DoNotOptimize(model.evalLayer(gemm, spec));
    }
}
BENCHMARK(BM_MaestroLiteGemm)->Arg(0)->Arg(1);

void
BM_CostDbBuildResNet(benchmark::State& state)
{
    Scenario sc;
    sc.name = "r50";
    sc.models = {zoo::resNet50(1)};
    sc.finalize();
    const Mcm mcm = templates::hetSides3x3();
    for (auto _ : state) {
        CostDb db(sc, mcm);
        benchmark::DoNotOptimize(db.expectedLayerCycles(0, 0));
    }
}
BENCHMARK(BM_CostDbBuildResNet);

void
BM_CostDbBuildScenario4(benchmark::State& state)
{
    const Scenario sc = suite::datacenterScenario(4);
    const Mcm mcm = templates::hetSides3x3();
    for (auto _ : state) {
        CostDb db(sc, mcm);
        benchmark::DoNotOptimize(db.expectedLayerCycles(0, 0));
    }
}
BENCHMARK(BM_CostDbBuildScenario4);

void
BM_WindowEvaluate(benchmark::State& state)
{
    Scenario sc;
    sc.name = "pair";
    sc.models = {zoo::resNet50(4), zoo::bertBase(2)};
    sc.finalize();
    const Mcm mcm = templates::hetSides3x3();
    const CostDb db(sc, mcm);
    const WindowEvaluator eval(db);

    WindowPlacement placement;
    ModelPlacement a;
    a.modelIdx = 0;
    a.segments = {PlacedSegment{LayerRange{0, 30}, 0},
                  PlacedSegment{LayerRange{31, 71}, 3}};
    ModelPlacement b;
    b.modelIdx = 1;
    b.segments = {PlacedSegment{LayerRange{0, 17}, 2},
                  PlacedSegment{LayerRange{18, 35}, 5}};
    placement.models = {a, b};

    for (auto _ : state) {
        benchmark::DoNotOptimize(eval.evaluate(placement));
    }
}
BENCHMARK(BM_WindowEvaluate);

/**
 * Contention-free window evaluation through the dedicated solo fast
 * path: the configuration the beam search's solo scoring uses
 * (thousands of calls per window search). evaluateSolo skips the
 * contention fixed point and link bookkeeping the full evaluate()
 * carries even when both are disabled.
 */
void
BM_WindowEvaluateSolo(benchmark::State& state)
{
    Scenario sc;
    sc.name = "solo";
    sc.models = {zoo::resNet50(4)};
    sc.finalize();
    const Mcm mcm = templates::hetSides3x3();
    const CostDb db(sc, mcm);
    EvaluatorOptions options;
    options.contention = false;
    options.dramRoofline = false;
    const WindowEvaluator eval(db, options);

    WindowPlacement placement;
    ModelPlacement a;
    a.modelIdx = 0;
    a.segments = {PlacedSegment{LayerRange{0, 30}, 0},
                  PlacedSegment{LayerRange{31, 71}, 3}};
    placement.models = {a};

    for (auto _ : state) {
        benchmark::DoNotOptimize(eval.evaluateSolo(placement));
    }
}
BENCHMARK(BM_WindowEvaluateSolo);

/**
 * Window evaluation over a single autoregressive decode step (fused
 * M = 1 GEMMs whose reduction width carries the KV cache). This is
 * the placement-scoring unit cost of the LLM serving path: every
 * decode round that misses the schedule cache pays a window search
 * made of these evaluations.
 */
void
BM_DecodeStepEvaluate(benchmark::State& state)
{
    TransformerConfig cfg;
    cfg.name = "chat";
    cfg.numBlocks = 4;
    cfg.dModel = 256;
    cfg.dFf = 1024;
    cfg.vocab = 0;
    Scenario sc;
    sc.name = "decode";
    sc.models = {buildDecodeStepModel(cfg, 256)};
    sc.finalize();
    const Mcm mcm = templates::hetSides3x3();
    const CostDb db(sc, mcm);
    const WindowEvaluator eval(db);

    WindowPlacement placement;
    ModelPlacement a;
    a.modelIdx = 0;
    a.segments = {PlacedSegment{LayerRange{0, 5}, 0},
                  PlacedSegment{LayerRange{6, 11}, 3}};
    placement.models = {a};

    for (auto _ : state) {
        benchmark::DoNotOptimize(eval.evaluate(placement));
    }
}
BENCHMARK(BM_DecodeStepEvaluate);

/**
 * The same two-model window as BM_WindowEvaluate, priced at the
 * opt-in phased fidelity on the broadcast-plane package: flow
 * enumeration, the per-phase link table (with shared-medium
 * aggregation), and the M/D/1 factor memo all run. The gap to
 * BM_WindowEvaluate is the full cost of the higher fidelity; CI
 * gates it against the committed baseline like the other window
 * benches.
 */
void
BM_PhasedContention(benchmark::State& state)
{
    Scenario sc;
    sc.name = "pair";
    sc.models = {zoo::resNet50(4), zoo::bertBase(2)};
    sc.finalize();
    const Mcm mcm = templates::hetSidesBroadcast3x3();
    const CostDb db(sc, mcm);
    EvaluatorOptions options;
    options.fidelity = CommFidelity::Phased;
    const WindowEvaluator eval(db, options);

    WindowPlacement placement;
    ModelPlacement a;
    a.modelIdx = 0;
    a.segments = {PlacedSegment{LayerRange{0, 30}, 0},
                  PlacedSegment{LayerRange{31, 71}, 3}};
    ModelPlacement b;
    b.modelIdx = 1;
    b.segments = {PlacedSegment{LayerRange{0, 17}, 2},
                  PlacedSegment{LayerRange{18, 35}, 5}};
    placement.models = {a, b};

    for (auto _ : state) {
        benchmark::DoNotOptimize(eval.evaluate(placement));
    }
}
BENCHMARK(BM_PhasedContention);

} // namespace

int
main(int argc, char** argv)
{
    return scar::bench::runMicroBench("micro_costmodel", argc, argv);
}
