/**
 * @file
 * Figure 13 — scaling to the 6x6 (full Simba) MCM: the evolutionary
 * SEG search (population 10, 4 generations) on Scenario 4 at
 * nsplits = 2 and nsplits = 3, comparing Het-Cross against the
 * homogeneous Simba-6 templates, with standalone references.
 *
 * Paper shape targets: Het-Cross achieves 2.3x / 1.9x lower EDP and
 * 2.1x / 1.8x lower latency than Simba-6 (Shi) / Simba-6 (NVD).
 */

#include <map>
#include <iostream>

#include "common/csv.h"
#include "common/table.h"
#include "bench_util.h"

using namespace scar;
using namespace scar::bench;

int
main()
{
    std::cout << "=== Figure 13: 6x6 MCM with evolutionary SEG search "
                 "===\n\n";

    const Scenario sc = suite::datacenterScenario(4);
    const Metrics base = runStrategy(standaloneNvd(), sc, OptTarget::Edp,
                                     templates::kDatacenterPes)
                             .metrics;

    CsvWriter csv(csvPath("fig13_6x6"),
                  {"nsplits", "strategy", "latency_s", "energy_j",
                   "edp_js", "rel_edp_vs_standalone"});

    std::map<int, std::map<std::string, Metrics>> results;
    for (int nsplits : {2, 3}) {
        std::cout << "--- nsplits = " << nsplits << " ---\n";
        TextTable table({"Strategy", "Latency (s)", "Energy (J)",
                         "EDP (J*s)", "Rel EDP vs Stand.(NVD)"});
        for (const Strategy& strategy : strategies6x6()) {
            ScarOptions opts;
            opts.mode = SearchMode::Evolutionary;
            opts.nsplits = nsplits;
            const RunResult r = runStrategy(strategy, sc, OptTarget::Edp,
                                            templates::kDatacenterPes,
                                            opts);
            results[nsplits][strategy.name] = r.metrics;
            table.addRow({strategy.name,
                          TextTable::num(r.metrics.latencySec, 3),
                          TextTable::num(r.metrics.energyJ, 3),
                          TextTable::num(r.metrics.edp(), 3),
                          TextTable::num(r.metrics.edp() / base.edp(),
                                         3)});
            csv.addRow({std::to_string(nsplits), strategy.name,
                        TextTable::num(r.metrics.latencySec, 6),
                        TextTable::num(r.metrics.energyJ, 6),
                        TextTable::num(r.metrics.edp(), 6),
                        TextTable::num(r.metrics.edp() / base.edp(),
                                       4)});
        }
        std::cout << table.render() << "\n";
    }

    for (int nsplits : {2, 3}) {
        const auto& r = results[nsplits];
        std::cout << "nsplits=" << nsplits
                  << ": Het-Cross EDP improvement over Simba-6 (Shi) = "
                  << TextTable::num(r.at("Simba-6 (Shi)").edp() /
                                        r.at("Het-Cross").edp(),
                                    2)
                  << "x (paper 2.3x/1.9x), over Simba-6 (NVD) = "
                  << TextTable::num(r.at("Simba-6 (NVD)").edp() /
                                        r.at("Het-Cross").edp(),
                                    2)
                  << "x; latency improvement over Simba-6 (Shi) = "
                  << TextTable::num(
                         r.at("Simba-6 (Shi)").latencySec /
                             r.at("Het-Cross").latencySec,
                         2)
                  << "x (paper 2.1x/1.8x)\n";
    }
    return 0;
}
