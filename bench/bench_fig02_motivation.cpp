/**
 * @file
 * Figure 2 — motivational study on a 2x2 MCM (3 NVDLA-like + 1
 * Shi-diannao-like, 4096 PEs): three layers from the second ResNet-50
 * block plus one GPT feed-forward layer.
 *
 * Reproduced configurations:
 *   C1  single model (ResNet block), NN-baton on all-Shi 2x2
 *   C2  single model, NN-baton on all-NVDLA 2x2
 *   C3  single model, SCAR on the heterogeneous 2x2
 *   C4  multi-model, NN-baton on the heterogeneous 2x2 (agnostic)
 *   C5  multi-model, SCAR spatial (single window)
 *   C6  multi-model, SCAR spatio-temporal (two windows)
 *
 * Paper ratios: C2 = 0.78x C1, C3 = 0.52x C1; C5 = 0.3x C4,
 * C6 = 0.28x C4 (shape target, not absolute numbers).
 */

#include <iostream>

#include "baselines/nn_baton.h"
#include "common/table.h"
#include "bench_util.h"

using namespace scar;

namespace
{

Mcm
homogeneous2x2(Dataflow df)
{
    return templates::simbaMesh(2, 2, df, 4096);
}

ScarOptions
scarOpts(int nsplits)
{
    ScarOptions opts;
    opts.nsplits = nsplits;
    return opts;
}

} // namespace

int
main()
{
    std::cout << "=== Figure 2: motivational 2x2 MCM study ===\n\n";

    const Scenario multi = suite::motivational();
    Scenario single;
    single.name = "ResNet50-blk2-only";
    single.models = {multi.models[0]};
    single.finalize();

    const Mcm het = templates::motivational2x2();

    // Single-model cases.
    const double c1 =
        scheduleNnBaton(single, homogeneous2x2(Dataflow::ShiOS))
            .metrics.edp();
    const double c2 =
        scheduleNnBaton(single, homogeneous2x2(Dataflow::NvdlaWS))
            .metrics.edp();
    Scar scarSingle(single, het, scarOpts(0));
    const double c3 = scarSingle.run().metrics.edp();

    // Multi-model cases.
    const double c4 = scheduleNnBaton(multi, het).metrics.edp();
    Scar scarSpatial(multi, het, scarOpts(0));
    const double c5 = scarSpatial.run().metrics.edp();
    Scar scarTemporal(multi, het, scarOpts(1));
    const double c6 = scarTemporal.run().metrics.edp();

    TextTable table({"Config", "Description", "EDP (J*s)", "Ratio",
                     "Paper ratio"});
    table.addRow({"C1", "single, NN-baton (Shi)", TextTable::num(c1, 6),
                  "1.00x", "1.00x"});
    table.addRow({"C2", "single, NN-baton (NVD)", TextTable::num(c2, 6),
                  TextTable::num(c2 / c1, 2) + "x", "0.78x"});
    table.addRow({"C3", "single, SCAR heterog.", TextTable::num(c3, 6),
                  TextTable::num(c3 / c1, 2) + "x", "0.52x"});
    table.addSeparator();
    table.addRow({"C4", "multi, NN-baton", TextTable::num(c4, 6),
                  "1.00x", "1.00x"});
    table.addRow({"C5", "multi, SCAR spatial", TextTable::num(c5, 6),
                  TextTable::num(c5 / c4, 2) + "x", "0.30x"});
    table.addRow({"C6", "multi, SCAR spatio-temporal",
                  TextTable::num(c6, 6),
                  TextTable::num(c6 / c4, 2) + "x", "0.28x"});
    std::cout << table.render() << "\n";

    std::cout << "Shape checks: SCAR on the heterogeneous MCM matches "
                 "or beats the best homogeneous chiplet "
              << (c3 <= std::min(c1, c2) * 1.01 ? "[OK]" : "[MISS]")
              << ",\n              SCAR beats NN-baton on the "
                 "multi-model workload "
              << (std::min(c5, c6) < c4 ? "[OK]" : "[MISS]") << "\n";
    std::cout << "Note: the paper's C3 = 0.52x arises from MAESTRO "
                 "per-layer affinities that differ within this block; "
                 "under our cost model all three block layers are "
                 "NVDLA-affine, so SCAR correctly converges to the "
                 "all-NVDLA assignment (C3 == C2). See EXPERIMENTS.md.\n";
    return 0;
}
