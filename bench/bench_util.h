/**
 * @file
 * Shared experiment-harness utilities for the bench binaries: the
 * strategy catalog of Section V-A (standalone / Simba-like / Het-*)
 * and uniform runners that produce end-to-end metrics plus candidate
 * clouds for Pareto plots.
 *
 * Every bench binary regenerates one paper table or figure and prints
 * the same rows/series the paper reports; raw series are additionally
 * written as CSV under ./bench_results/.
 */

#ifndef SCAR_BENCH_BENCH_UTIL_H
#define SCAR_BENCH_BENCH_UTIL_H

#include <functional>
#include <string>
#include <vector>

#include "arch/mcm_templates.h"
#include "baselines/standalone.h"
#include "eval/pareto.h"
#include "eval/scenario_suite.h"
#include "sched/scar.h"

namespace scar
{
namespace bench
{

/** One evaluated MCM strategy: an MCM organization + scheduler kind. */
struct Strategy
{
    std::string name;
    bool standalone = false; ///< standalone baseline vs SCAR scheduling
    std::function<Mcm(int pes)> makeMcm;
};

/** The six 3x3 strategies of Tables IV and V. */
std::vector<Strategy> meshStrategies();

/** The three triangular strategies of Figure 12. */
std::vector<Strategy> triangularStrategies();

/** The three 6x6 strategies of Figure 13. */
std::vector<Strategy> strategies6x6();

/** Standalone NVDLA reference strategy (normalization baseline). */
Strategy standaloneNvd();

/** Outcome of one (strategy, scenario, target) experiment cell. */
struct RunResult
{
    Metrics metrics;
    std::vector<Metrics> candidates;
    ScheduleResult schedule;
};

/**
 * Runs one experiment cell.
 * @param strategy MCM organization + scheduler kind
 * @param scenario workload
 * @param target search objective (ignored for standalone)
 * @param pes chiplet PE count (datacenter 4096 / AR/VR 256)
 * @param base extra SCAR options (nsplits, mode, packing, ...)
 */
RunResult runStrategy(const Strategy& strategy, const Scenario& scenario,
                      OptTarget target, int pes,
                      ScarOptions base = ScarOptions{});

/** Ensures ./bench_results exists and returns the CSV path for a name. */
std::string csvPath(const std::string& name);

/** Ensures ./bench_results exists and returns the JSON path for a name. */
std::string jsonPath(const std::string& name);

/**
 * Argv for a Google-Benchmark micro bench: the caller's argv plus,
 * unless already given, `--benchmark_out=<jsonPath(name)>` (JSON
 * format) so every run leaves a machine-readable artifact for
 * scripts/check_bench_regression.py, and `--benchmark_min_time` from
 * the SCAR_BENCH_MIN_TIME_S env knob (the CI smoke job shrinks run
 * time through it). The returned strings own the storage; pass
 * pointers into benchmark::Initialize.
 */
std::vector<std::string> microBenchArgs(const std::string& name,
                                        int argc, char** argv);

/** Environment knob with a fallback for unset/empty variables — the
 *  bench-smoke CI job shrinks sweep sizes through these. */
int envInt(const char* name, int fallback);
double envDouble(const char* name, double fallback);
std::string envStr(const char* name, const std::string& fallback);

} // namespace bench
} // namespace scar

#endif // SCAR_BENCH_BENCH_UTIL_H
