/**
 * @file
 * Figure 12 — generality to other NoP topologies: the EDP search for
 * scenarios 3 and 4 on the triangular packages (Simba-T Shi/NVD and
 * Het-T), normalized by the standalone NVDLA.
 *
 * Paper shape targets: Het-T beats both Simba-T variants on the heavy
 * scenario 4 (2.5x over Simba-T (Shi), 1.67x over Simba-T (NVD)) but
 * is second to Simba-T (NVD) on scenario 3.
 */

#include <map>
#include <iostream>

#include "common/csv.h"
#include "common/table.h"
#include "bench_util.h"

using namespace scar;
using namespace scar::bench;

int
main()
{
    std::cout << "=== Figure 12: triangular NoP topology, EDP search "
                 "===\n\n";

    CsvWriter csv(csvPath("fig12_triangular"),
                  {"scenario", "strategy", "rel_latency", "rel_edp"});

    std::map<std::string, std::map<int, double>> rel;
    for (int idx : {3, 4}) {
        const Scenario sc = suite::datacenterScenario(idx);
        const Metrics base = runStrategy(standaloneNvd(), sc,
                                         OptTarget::Edp,
                                         templates::kDatacenterPes)
                                 .metrics;
        std::cout << "--- " << sc.name << " ---\n";
        TextTable table({"Strategy", "Rel latency", "Rel EDP"});
        for (const Strategy& strategy : triangularStrategies()) {
            const RunResult r = runStrategy(strategy, sc, OptTarget::Edp,
                                            templates::kDatacenterPes);
            const double relLat =
                r.metrics.latencySec / base.latencySec;
            const double relEdp = r.metrics.edp() / base.edp();
            rel[strategy.name][idx] = relEdp;
            table.addRow({strategy.name, TextTable::num(relLat, 3),
                          TextTable::num(relEdp, 3)});
            csv.addRow({sc.name, strategy.name,
                        TextTable::num(relLat, 4),
                        TextTable::num(relEdp, 4)});
        }
        std::cout << table.render() << "\n";
    }

    const bool hetBeatsShi =
        rel["Het-T"][4] < rel["Simba-T (Shi)"][4];
    const bool hetBeatsStandalone = rel["Het-T"][4] < 1.0;
    std::cout << "Shape checks: Het-T beats Simba-T (Shi) on Sc4 "
              << (hetBeatsShi ? "[OK]" : "[MISS]")
              << ", beats the standalone NVDLA "
              << (hetBeatsStandalone ? "[OK]" : "[MISS]")
              << "; EDP ratio vs Simba-T (Shi) = "
              << TextTable::num(rel["Simba-T (Shi)"][4] / rel["Het-T"][4],
                                2)
              << "x (paper 2.5x), vs Simba-T (NVD) = "
              << TextTable::num(rel["Simba-T (NVD)"][4] / rel["Het-T"][4],
                                2)
              << "x (paper 1.67x; the NVD ranking flips here for the "
                 "same cost-model reason as the mesh Sc4 result)\n";
    return 0;
}
