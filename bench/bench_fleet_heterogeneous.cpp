/**
 * @file
 * Heterogeneous-fleet sweep: can a 2-package fleet whose packages
 * *differ* beat the best fleet of two identical packages at equal
 * total silicon (18 chiplets, same PEs everywhere)?
 *
 * This lifts SCAR's chiplet-level argument — heterogeneity wins when
 * traffic components prefer different dataflows — one level up, to
 * the serving fleet (the direction the Odema et al. inter-layer
 * scheduling-space work points at). The fleet pairs a
 * throughput-oriented package (Simba 3x3, all NVDLA-style
 * weight-stationary chiplets: ~2x faster on the GEMM-bound NLP mixes)
 * with a latency-oriented package (Het-Sides 3x3, mixing
 * Shi-diannao-style output-stationary columns: 1.6-3.2x faster on the
 * spatially-bound vision mixes that carry tight frame deadlines).
 *
 * Traffic is a phased datacenter+AR/VR blend — alternating 1.5 s
 * epochs of MLPerf-style NLP traffic (BERT-Large/Base, interactive
 * 150-200 ms SLOs) and XRBench-style vision traffic (GoogLeNet,
 * EyeCOD, SP2Dense at 20 fps frame deadlines), the diurnal /
 * session-burst pattern a multi-tenant serving region sees. Within an
 * epoch the admission controller forms single-class mixes, so the
 * fleet-level scheduling question is real: which package should this
 * mix run on?
 *
 * Fleets at equal total chiplet count (2 x 9, same PE count):
 *  - het NVD+HetSides with BestFit (cost-aware), MixAffinity, and
 *    LeastLoaded routing;
 *  - homo 2x Simba(NVD), homo 2x Het-Sides, each with LeastLoaded
 *    (their best policy — identical shards leave nothing for
 *    cost-aware routing to exploit).
 *
 * Expected outcome (the acceptance bar): the heterogeneous fleet
 * under BestFit posts the lowest SLO violation rate — the
 * NVD-package absorbs the NLP epochs that saturate 2x Het-Sides,
 * while the Het-Sides package serves the vision epochs that collapse
 * 2x NVD — and BestFit beats MixAffinity, whose signature hash pins
 * about half the vision mixes to the wrong package.
 *
 * Env knobs (bench-smoke CI runs a tiny configuration):
 *  - SCAR_BENCH_EPOCHS: traffic epochs (default 8)
 *  - SCAR_BENCH_EPOCH_SEC: epoch length in seconds (default 1.5)
 *
 * Raw series: bench_results/fleet_heterogeneous.csv (columns
 * documented in bench/README.md).
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "bench_util.h"
#include "common/csv.h"
#include "common/rng.h"
#include "common/table.h"
#include "eval/reporter.h"
#include "runtime/fleet.h"
#include "workload/model_zoo.h"

namespace
{

using namespace scar;
using namespace scar::runtime;

/**
 * Alternating-epoch Poisson trace: models of class 0 arrive during
 * even epochs, class 1 during odd epochs — the phased multi-tenant
 * pattern described in the header. Deterministic in (catalog,
 * classOf, epochs, epochSec, seed).
 */
std::vector<Request>
phasedTrace(const std::vector<ServedModel>& catalog,
            const std::vector<int>& classOf, int epochs,
            double epochSec, std::uint64_t seed)
{
    std::vector<std::pair<double, int>> arrivals;
    Rng rng(seed);
    for (std::size_t m = 0; m < catalog.size(); ++m) {
        for (int e = classOf[m]; e < epochs; e += 2) {
            double t = e * epochSec;
            const double end = t + epochSec;
            for (;;) {
                t += -std::log(1.0 - rng.uniform()) /
                     catalog[m].rateRps;
                if (t >= end)
                    break;
                arrivals.push_back({t, static_cast<int>(m)});
            }
        }
    }
    std::sort(arrivals.begin(), arrivals.end());
    return traceFromArrivals(catalog, std::move(arrivals));
}

} // namespace

int
main()
{
    using Clock = std::chrono::steady_clock;

    const int kEpochs = bench::envInt("SCAR_BENCH_EPOCHS", 8);
    const double kEpochSec =
        bench::envDouble("SCAR_BENCH_EPOCH_SEC", 1.5);

    // NLP class (even epochs): GEMM-bound, interactive SLOs,
    // ~2x faster on the all-NVDLA package.
    std::vector<ServedModel> catalog(5);
    std::vector<int> classOf = {0, 0, 1, 1, 1};
    catalog[0].model = zoo::bertLarge(8);
    catalog[0].rateRps = 200.0;
    catalog[0].sloSec = 0.2;
    catalog[1].model = zoo::bertBase(8);
    catalog[1].rateRps = 160.0;
    catalog[1].sloSec = 0.15;
    // Vision class (odd epochs): spatially-bound CNNs at 20 fps frame
    // deadlines, 1.6-3.2x faster on the Shi-heavy Het-Sides package.
    catalog[2].model = zoo::googleNet(32);
    catalog[2].rateRps = 700.0;
    catalog[2].sloSec = frameDeadlineSec(20.0);
    catalog[3].model = zoo::eyeCod(32);
    catalog[3].rateRps = 300.0;
    catalog[3].sloSec = frameDeadlineSec(20.0);
    catalog[4].model = zoo::sp2Dense(16);
    catalog[4].rateRps = 200.0;
    catalog[4].sloSec = frameDeadlineSec(20.0);

    // Boundary episodes (the class handover instants) dominate the
    // tail, so a single trace is noisy; every fleet is scored on the
    // same three seeded traces and compared by mean violation rate.
    const std::vector<std::uint64_t> kSeeds = {7, 314, 5};
    std::vector<std::vector<Request>> traces;
    std::size_t traceRequests = 0;
    for (const std::uint64_t seed : kSeeds) {
        traces.push_back(
            phasedTrace(catalog, classOf, kEpochs, kEpochSec, seed));
        traceRequests += traces.back().size();
    }

    const Mcm nvd = templates::simba3x3(Dataflow::NvdlaWS);
    const Mcm hetSides = templates::hetSides3x3();

    struct FleetConfig
    {
        const char* fleet;
        std::vector<Mcm> shardTemplates;
        RoutingPolicy routing;
    };
    const std::vector<FleetConfig> configs = {
        {"het NVD+HetSides", {nvd, hetSides}, RoutingPolicy::BestFit},
        {"het NVD+HetSides",
         {nvd, hetSides},
         RoutingPolicy::MixAffinity},
        {"het NVD+HetSides",
         {nvd, hetSides},
         RoutingPolicy::LeastLoaded},
        {"homo 2xNVD", {nvd, nvd}, RoutingPolicy::LeastLoaded},
        {"homo 2xHetSides",
         {hetSides, hetSides},
         RoutingPolicy::LeastLoaded},
    };

    TextTable table({"Fleet", "Routing", "Mean SLO miss",
                     "Worst SLO miss", "p99 (s)", "Virt req/s",
                     "Searches", "Util s0/s1", "Wall (ms)"});
    CsvWriter csv(bench::csvPath("fleet_heterogeneous"),
                  {"fleet", "routing", "seed", "slo_miss_rate",
                   "p99_s", "virt_throughput_rps", "searches",
                   "util_shard0", "util_shard1", "contested_routes",
                   "cost_optimal_routes", "solve_stall_s", "wall_ms"});

    double hetBestFitMiss = -1.0;
    double hetAffinityMiss = -1.0;
    double bestHomoMiss = -1.0;
    for (const FleetConfig& config : configs) {
        double missSum = 0.0;
        double missWorst = 0.0;
        double p99Worst = 0.0;
        double throughputSum = 0.0;
        double wallMsSum = 0.0;
        long searches = 0;
        double util0 = 0.0;
        double util1 = 0.0;
        for (std::size_t t = 0; t < kSeeds.size(); ++t) {
            FleetOptions options;
            options.shardTemplates = config.shardTemplates;
            options.routing = config.routing;
            options.serving.modeledSolveSec = 0.005;
            options.serving.switchOverheadSec = 0.002;
            options.serving.admission.maxQueueDelaySec = 0.02;
            FleetSimulator fleet(catalog, nvd, options);

            const auto t0 = Clock::now();
            const ServingReport report = fleet.run(traces[t]);
            const double wallMs =
                std::chrono::duration<double, std::milli>(
                    Clock::now() - t0)
                    .count();

            missSum += report.sloViolationRate;
            missWorst =
                std::max(missWorst, report.sloViolationRate);
            p99Worst = std::max(p99Worst, report.p99LatencySec);
            throughputSum += report.throughputRps;
            wallMsSum += wallMs;
            searches += report.cache.misses;
            util0 += report.shards[0].utilization;
            util1 += report.shards[1].utilization;
            csv.addRow(
                {config.fleet, routingPolicyName(config.routing),
                 std::to_string(kSeeds[t]),
                 TextTable::num(report.sloViolationRate, 6),
                 TextTable::num(report.p99LatencySec, 6),
                 TextTable::num(report.throughputRps, 3),
                 std::to_string(report.cache.misses),
                 TextTable::num(report.shards[0].utilization, 4),
                 TextTable::num(report.shards[1].utilization, 4),
                 std::to_string(report.contestedRoutes),
                 std::to_string(report.costOptimalRoutes),
                 TextTable::num(report.solveStallSec, 6),
                 TextTable::num(wallMs, 3)});
        }
        const double n = static_cast<double>(kSeeds.size());
        const double missMean = missSum / n;

        const bool het = config.shardTemplates[0].signature() !=
                         config.shardTemplates[1].signature();
        if (het && config.routing == RoutingPolicy::BestFit)
            hetBestFitMiss = missMean;
        if (het && config.routing == RoutingPolicy::MixAffinity)
            hetAffinityMiss = missMean;
        if (!het)
            bestHomoMiss = bestHomoMiss < 0.0
                               ? missMean
                               : std::min(bestHomoMiss, missMean);

        table.addRow(
            {config.fleet, routingPolicyName(config.routing),
             TextTable::num(missMean * 100.0, 2) + "%",
             TextTable::num(missWorst * 100.0, 2) + "%",
             TextTable::num(p99Worst, 4),
             TextTable::num(throughputSum / n, 0),
             std::to_string(searches),
             TextTable::num(util0 / n * 100.0, 0) + "/" +
                 TextTable::num(util1 / n * 100.0, 0) + "%",
             TextTable::num(wallMsSum, 0)});
    }

    std::cout << "Heterogeneous vs homogeneous 2-package fleets, "
                 "equal total silicon (18 chiplets)\n"
              << traceRequests << " requests over " << kSeeds.size()
              << " traces of " << kEpochs << " x " << kEpochSec
              << " s phased NLP/vision epochs\n\n";
    std::cout << table.render();
    std::cout
        << "\nAcceptance: het+BestFit SLO miss "
        << TextTable::num(hetBestFitMiss * 100.0, 2)
        << "% vs best homogeneous "
        << TextTable::num(bestHomoMiss * 100.0, 2) << "% -> "
        << (hetBestFitMiss < bestHomoMiss ? "HET WINS" : "het loses")
        << "; BestFit vs MixAffinity "
        << TextTable::num(hetBestFitMiss * 100.0, 2) << "% vs "
        << TextTable::num(hetAffinityMiss * 100.0, 2) << "% -> "
        << (hetBestFitMiss <= hetAffinityMiss ? "BESTFIT WINS"
                                              : "bestfit loses")
        << "\n";
    std::cout << "\nCSV: " << bench::csvPath("fleet_heterogeneous")
              << "\n";
    // The verdict gates the exit code only for the full default
    // configuration; shrunken smoke runs (env overrides) are too
    // noisy for the comparison to be meaningful and only check that
    // the sweep executes.
    const bool smoke = std::getenv("SCAR_BENCH_EPOCHS") != nullptr ||
                       std::getenv("SCAR_BENCH_EPOCH_SEC") != nullptr;
    if (smoke)
        return 0;
    return hetBestFitMiss < bestHomoMiss &&
                   hetBestFitMiss <= hetAffinityMiss
               ? 0
               : 1;
}
