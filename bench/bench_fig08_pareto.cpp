/**
 * @file
 * Figure 8 — Pareto results of the search across MCM strategies for
 * scenarios 3 and 4 under the three search targets. Prints each
 * strategy's Pareto front (energy vs latency) normalized by the
 * standalone NVDLA point and dumps all candidate points as CSV.
 */

#include <iostream>

#include "common/csv.h"
#include "common/table.h"
#include "bench_util.h"

using namespace scar;
using namespace scar::bench;

int
main()
{
    std::cout << "=== Figure 8: Pareto fronts, scenarios 3 and 4 ===\n\n";

    CsvWriter csv(csvPath("fig08_pareto"),
                  {"scenario", "search", "strategy", "latency_s",
                   "energy_j", "on_front"});

    const std::vector<OptTarget> searches{
        OptTarget::Latency, OptTarget::Energy, OptTarget::Edp};

    for (int idx : {3, 4}) {
        const Scenario sc = suite::datacenterScenario(idx);
        const RunResult base = runStrategy(
            standaloneNvd(), sc, OptTarget::Edp,
            templates::kDatacenterPes);

        for (OptTarget target : searches) {
            std::cout << "--- " << sc.name << ", "
                      << optTargetName(target) << " search ---\n";
            TextTable table({"Strategy", "Front points",
                             "Best lat (norm)", "Best energy (norm)"});
            for (const Strategy& strategy : meshStrategies()) {
                if (strategy.standalone)
                    continue;
                const RunResult r =
                    runStrategy(strategy, sc, target,
                                templates::kDatacenterPes);
                const auto front = paretoFront(r.candidates);
                double bestLat = 1e30;
                double bestE = 1e30;
                for (const Metrics& m : r.candidates) {
                    bestLat = std::min(bestLat, m.latencySec);
                    bestE = std::min(bestE, m.energyJ);
                }
                for (const Metrics& m : r.candidates) {
                    const bool onFront =
                        std::find_if(front.begin(), front.end(),
                                     [&](const Metrics& f) {
                                         return f.latencySec ==
                                                    m.latencySec &&
                                                f.energyJ == m.energyJ;
                                     }) != front.end();
                    csv.addRow({sc.name, optTargetName(target),
                                strategy.name,
                                TextTable::num(m.latencySec, 6),
                                TextTable::num(m.energyJ, 6),
                                onFront ? "1" : "0"});
                }
                table.addRow(
                    {strategy.name, std::to_string(front.size()),
                     TextTable::num(
                         bestLat / base.metrics.latencySec, 3),
                     TextTable::num(bestE / base.metrics.energyJ, 3)});
            }
            // Standalone reference points.
            csv.addRow({sc.name, optTargetName(target), "Stand.(NVD)",
                        TextTable::num(base.metrics.latencySec, 6),
                        TextTable::num(base.metrics.energyJ, 6), "1"});
            table.addRow({"Stand.(NVD) [ref]", "1", "1.000", "1.000"});
            std::cout << table.render() << "\n";
        }
    }
    std::cout << "Candidate clouds written to "
              << csvPath("fig08_pareto") << "\n";
    return 0;
}
