/**
 * @file
 * Section V-E ablation 1 — time-partitioning granularity: Scenario 4
 * on Het-Sides under the EDP search with nsplits swept from 1 to 5.
 *
 * Paper shape target: EDP improves at an average rate of ~1.25x per
 * added split before nsplits = 4, then flattens (~1.04x from 4 to 5),
 * motivating the nsplits = 4 default.
 */

#include <iostream>

#include "common/csv.h"
#include "common/table.h"
#include "bench_util.h"

using namespace scar;
using namespace scar::bench;

int
main()
{
    std::cout << "=== Ablation: nsplits sweep (Scenario 4, Het-Sides, "
                 "EDP search) ===\n\n";

    const Scenario sc = suite::datacenterScenario(4);
    CsvWriter csv(csvPath("ablation_nsplits"),
                  {"nsplits", "windows", "latency_s", "energy_j",
                   "edp_js"});

    TextTable table({"nsplits", "Windows", "Latency (s)", "Energy (J)",
                     "EDP (J*s)", "Improvement vs prev"});
    double prevEdp = 0.0;
    std::vector<double> improvements;
    for (int nsplits = 1; nsplits <= 5; ++nsplits) {
        ScarOptions opts;
        opts.nsplits = nsplits;
        opts.target = OptTarget::Edp;
        Scar scar(sc, templates::hetSides3x3(), opts);
        const ScheduleResult r = scar.run();
        const double edp = r.metrics.edp();
        std::string improvement = "-";
        if (prevEdp > 0.0) {
            improvements.push_back(prevEdp / edp);
            improvement = TextTable::num(prevEdp / edp, 3) + "x";
        }
        table.addRow({std::to_string(nsplits),
                      std::to_string(r.windows.size()),
                      TextTable::num(r.metrics.latencySec, 3),
                      TextTable::num(r.metrics.energyJ, 3),
                      TextTable::num(edp, 3), improvement});
        csv.addRow({std::to_string(nsplits),
                    std::to_string(r.windows.size()),
                    TextTable::num(r.metrics.latencySec, 6),
                    TextTable::num(r.metrics.energyJ, 6),
                    TextTable::num(edp, 6)});
        prevEdp = edp;
    }
    std::cout << table.render() << "\n";

    const double early = improvements.size() >= 3
                             ? (improvements[0] + improvements[1] +
                                improvements[2]) / 3.0
                             : 0.0;
    const double late = improvements.empty() ? 0.0
                                             : improvements.back();
    std::cout << "Mean improvement rate before nsplits=4: "
              << TextTable::num(early, 3)
              << "x (paper ~1.25x); nsplits 4->5: "
              << TextTable::num(late, 3) << "x (paper ~1.04x)\n";
    std::cout << "Shape check: diminishing returns after 4 splits "
              << (late <= early + 0.05 ? "[OK]" : "[MISS]") << "\n";
    return 0;
}
